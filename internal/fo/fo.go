// Package fo implements local-differential-privacy frequency oracles (FOs):
// client-side randomizers plus server-side unbiased frequency estimators
// over a finite categorical domain Ω = {0, ..., d-1}.
//
// The oracles provided are Generalized Randomized Response (GRR), Optimized
// Unary Encoding (OUE), Symmetric Unary Encoding (SUE, the basic RAPPOR
// randomizer), Optimized Local Hashing (OLH), and cohort-hashed OLH
// (OLH-C, whose server fold is domain-independent). Every oracle exposes
// its closed-form estimation variance V(ε, n), which the adaptive LDP-IDS
// mechanisms use to compute potential publication error (paper Eq. 2 /
// §5.3).
//
// Construct an oracle directly (NewGRR, NewOUE, ...) or by registry name
// through New; Names lists every registered name. Clients call
// Oracle.Perturb; servers either batch with Oracle.Estimate or stream
// reports through Oracle.NewAggregator (O(d) state) — optionally striped
// across CPUs with NewShardedAggregator. The ingestion pipeline that moves
// reports from clients to an Aggregator lives in package collect.
package fo

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"ldpids/internal/ldprand"
)

// Kind identifies a report's wire format. It is carried explicitly on
// every Report so the server never has to infer the format from which
// payload fields happen to be non-zero (an OLH report whose random per-user
// seed is 0 is still an OLH report).
type Kind uint8

const (
	// KindValue is a categorical report (GRR: the perturbed item).
	KindValue Kind = iota
	// KindUnary is a byte-per-element perturbed unary vector (OUE/SUE).
	KindUnary
	// KindPacked is a bit-packed perturbed unary vector (OUE/SUE): 64
	// domain elements per uint64 word, 8x smaller on the wire.
	KindPacked
	// KindHash is a local-hashing report (OLH): (Seed, Value) where Value
	// holds the perturbed hash bucket.
	KindHash
	// KindCohort is a cohort-hashed report (OLH-C): Seed holds the public
	// cohort index in [0, k) and Value the perturbed hash bucket. Unlike
	// KindHash the seed space is small and shared, so the server folds the
	// report into a k×g count matrix in O(1) instead of rehashing the
	// whole domain per report.
	KindCohort
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindUnary:
		return "unary"
	case KindPacked:
		return "packed"
	case KindHash:
		return "hash"
	case KindCohort:
		return "cohort"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Report is one user's perturbed contribution. Kind selects which payload
// fields are meaningful: Value for KindValue, Bits for KindUnary, Packed
// for KindPacked, (Seed, Value) for KindHash, and (Seed=cohort, Value) for
// KindCohort.
type Report struct {
	// Kind identifies the wire format.
	Kind Kind
	// Value is a categorical report (GRR: perturbed item; OLH/OLH-C:
	// perturbed hash bucket).
	Value int
	// Bits is a perturbed unary-encoded vector (KindUnary).
	Bits []byte
	// Packed is a bit-packed perturbed unary vector (KindPacked): bit k of
	// the flattened word array is domain element k.
	Packed []uint64
	// Seed carries the per-user hash seed for OLH reports, or the public
	// cohort index for OLH-C reports.
	Seed uint64
}

// Size returns the wire size of the report in bytes, used by the
// communication accounting layer. Categorical reports cost 4 bytes; unary
// reports cost one byte per domain element plus header; packed unary costs
// 8 bytes per 64 domain elements plus header; OLH costs 12 (8-byte seed +
// bucket); OLH-C costs 8 (small cohort index + bucket). A kind this
// version does not know costs the 4-byte header: the accounting layer
// must keep working on logs written by newer versions.
func (r Report) Size() int {
	switch r.Kind {
	case KindValue:
		return 4
	case KindUnary:
		return len(r.Bits) + 4
	case KindPacked:
		return 8*len(r.Packed) + 4
	case KindHash:
		return 12
	case KindCohort:
		return 8
	default:
		return 4
	}
}

// Oracle is a frequency oracle protocol: a client-side perturbation and a
// server-side aggregation that yields an unbiased frequency estimate.
type Oracle interface {
	// Name returns the protocol's short name ("GRR", "OUE", ...).
	Name() string
	// Perturb randomizes a single user's true value v ∈ [0, d) with
	// privacy budget eps, drawing randomness from src.
	Perturb(v int, eps float64, src *ldprand.Source) Report
	// Estimate aggregates perturbed reports into an unbiased estimate of
	// the frequency (fraction in [0,1], possibly outside after noise) of
	// each domain element. The reports must all have been produced with
	// the same eps. It is equivalent to folding every report through
	// NewAggregator and calling Aggregator.Estimate.
	Estimate(reports []Report, eps float64) ([]float64, error)
	// NewAggregator returns a streaming aggregator for reports perturbed
	// with budget eps: the server folds each report into O(d) counters as
	// it arrives instead of retaining an O(n·d) report slice.
	NewAggregator(eps float64) (Aggregator, error)
	// Variance returns the estimator's per-element variance for n users
	// and budget eps when the element's true frequency is fk (exact
	// form; paper Eq. 2 for GRR).
	Variance(eps float64, n int, fk float64) float64
	// VarianceApprox returns the frequency-independent approximation
	// (fk → 0) used for potential-publication-error computation.
	VarianceApprox(eps float64, n int) float64
	// Domain returns the domain size d the oracle was built for.
	Domain() int
}

// Common construction errors.
var (
	ErrNoReports  = errors.New("fo: no reports to aggregate")
	ErrBadEpsilon = errors.New("fo: privacy budget must be positive")
)

func checkDomain(d int) {
	if d < 2 {
		panic(fmt.Sprintf("fo: domain size must be >= 2, got %d", d))
	}
}

// ---------------------------------------------------------------------------
// GRR: Generalized Randomized Response (direct encoding).
// ---------------------------------------------------------------------------

// GRR implements Generalized Randomized Response over a domain of size d.
// A user reports the true value with probability p = e^ε/(e^ε+d-1) and any
// other fixed value with probability q = 1/(e^ε+d-1).
type GRR struct {
	d int
}

// NewGRR returns a GRR oracle for domain size d (d >= 2).
func NewGRR(d int) *GRR {
	checkDomain(d)
	return &GRR{d: d}
}

// Name implements Oracle.
func (g *GRR) Name() string { return "GRR" }

// Domain implements Oracle.
func (g *GRR) Domain() int { return g.d }

// probs returns (p, q) for budget eps.
func (g *GRR) probs(eps float64) (p, q float64) {
	e := math.Exp(eps)
	p = e / (e + float64(g.d) - 1)
	q = 1 / (e + float64(g.d) - 1)
	return p, q
}

// Perturb implements Oracle.
func (g *GRR) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= g.d {
		panic(fmt.Sprintf("fo: GRR value %d outside domain [0,%d)", v, g.d))
	}
	p, _ := g.probs(eps)
	if src.Bernoulli(p) {
		return Report{Kind: KindValue, Value: v}
	}
	// Uniform over the d-1 other values.
	o := src.Intn(g.d - 1)
	if o >= v {
		o++
	}
	return Report{Kind: KindValue, Value: o}
}

// Estimate implements Oracle.
func (g *GRR) Estimate(reports []Report, eps float64) ([]float64, error) {
	return batchEstimate(g, reports, eps)
}

// Variance implements Oracle (paper Eq. 2):
//
//	Var = (d-2+e^ε)/(n(e^ε-1)^2) + fk(d-2)/(n(e^ε-1))
func (g *GRR) Variance(eps float64, n int, fk float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	d := float64(g.d)
	nn := float64(n)
	return (d-2+e)/(nn*(e-1)*(e-1)) + fk*(d-2)/(nn*(e-1))
}

// VarianceApprox implements Oracle: the fk→0 simplification
// (d-2+e^ε)/(n(e^ε-1)^2) used by the paper for err.
func (g *GRR) VarianceApprox(eps float64, n int) float64 {
	return g.Variance(eps, n, 0)
}

// ---------------------------------------------------------------------------
// Unary encodings: SUE (basic RAPPOR) and OUE.
// ---------------------------------------------------------------------------

// unary is the shared implementation of unary-encoding oracles. A user
// encodes value v as a d-bit one-hot vector and flips each bit
// independently: a 1-bit stays 1 with probability p, a 0-bit becomes 1 with
// probability q. With packed set, clients emit the bit-packed wire format
// (KindPacked) instead of one byte per domain element; both formats fold
// into the same aggregator and yield identical estimates.
type unary struct {
	d      int
	name   string
	packed bool
	probs  func(eps float64) (p, q float64)
}

func (u *unary) Name() string { return u.name }
func (u *unary) Domain() int  { return u.d }

func (u *unary) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= u.d {
		panic(fmt.Sprintf("fo: %s value %d outside domain [0,%d)", u.name, v, u.d))
	}
	p, q := u.probs(eps)
	var bits []byte
	var words []uint64
	set := func(k int) { bits[k] = 1 }
	if u.packed {
		words = make([]uint64, packedWords(u.d))
		set = func(k int) { words[k>>6] |= 1 << (uint(k) & 63) }
	} else {
		bits = make([]byte, u.d)
	}
	if src.Bernoulli(p) {
		set(v)
	}
	// The d-1 non-true bits are 1 independently with probability q.
	// Instead of d-1 Bernoulli draws, jump between set bits with
	// geometric skips: expected work O(q·d) instead of O(d).
	if q > 0 {
		logq := math.Log(1 - q)
		pos := 0 // index in the flattened space of non-true positions
		for {
			// Geometric(q): failures before the next success.
			ufl := src.Float64()
			if ufl >= 1 {
				ufl = math.Nextafter(1, 0)
			}
			pos += int(math.Log(1-ufl) / logq)
			if pos >= u.d-1 {
				break
			}
			real := pos
			if real >= v {
				real++
			}
			set(real)
			pos++
		}
	}
	if u.packed {
		return Report{Kind: KindPacked, Value: -1, Packed: words}
	}
	return Report{Kind: KindUnary, Value: -1, Bits: bits}
}

func (u *unary) Estimate(reports []Report, eps float64) ([]float64, error) {
	return batchEstimate(u, reports, eps)
}

// variance for any (p,q) unary scheme:
//
//	Var = q(1-q) / (n (p-q)^2) + fk (p(1-p) - q(1-q)) / (n (p-q)^2)
func (u *unary) Variance(eps float64, n int, fk float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	p, q := u.probs(eps)
	nn := float64(n)
	den := nn * (p - q) * (p - q)
	return q*(1-q)/den + fk*(p*(1-p)-q*(1-q))/den
}

func (u *unary) VarianceApprox(eps float64, n int) float64 {
	return u.Variance(eps, n, 0)
}

// SUE is Symmetric Unary Encoding (basic RAPPOR): p = e^{ε/2}/(e^{ε/2}+1),
// q = 1-p.
type SUE struct{ unary }

func sueProbs(eps float64) (float64, float64) {
	e := math.Exp(eps / 2)
	return e / (e + 1), 1 / (e + 1)
}

// NewSUE returns an SUE oracle for domain size d.
func NewSUE(d int) *SUE {
	checkDomain(d)
	return &SUE{unary{d: d, name: "SUE", probs: sueProbs}}
}

// NewSUEPacked returns an SUE oracle whose clients emit the bit-packed
// wire format (8x smaller reports; identical estimates).
func NewSUEPacked(d int) *SUE {
	checkDomain(d)
	return &SUE{unary{d: d, name: "SUE-packed", packed: true, probs: sueProbs}}
}

// OUE is Optimized Unary Encoding: p = 1/2, q = 1/(e^ε+1), which minimizes
// estimator variance among unary schemes, giving Var ≈ 4e^ε/(n(e^ε-1)^2).
type OUE struct{ unary }

func oueProbs(eps float64) (float64, float64) {
	return 0.5, 1 / (math.Exp(eps) + 1)
}

// NewOUE returns an OUE oracle for domain size d.
func NewOUE(d int) *OUE {
	checkDomain(d)
	return &OUE{unary{d: d, name: "OUE", probs: oueProbs}}
}

// NewOUEPacked returns an OUE oracle whose clients emit the bit-packed
// wire format (8x smaller reports; identical estimates).
func NewOUEPacked(d int) *OUE {
	checkDomain(d)
	return &OUE{unary{d: d, name: "OUE-packed", packed: true, probs: oueProbs}}
}

// ---------------------------------------------------------------------------
// OLH: Optimized Local Hashing.
// ---------------------------------------------------------------------------

// OLH implements Optimized Local Hashing. Each user hashes their value into
// g = ⌊e^ε⌋+1 buckets with a per-user seed and runs GRR over the buckets;
// the server counts, for each domain element, the reports whose hash bucket
// matches that element under the reporter's seed.
type OLH struct {
	d int
}

// NewOLH returns an OLH oracle for domain size d.
func NewOLH(d int) *OLH {
	checkDomain(d)
	return &OLH{d: d}
}

// Name implements Oracle.
func (o *OLH) Name() string { return "OLH" }

// Domain implements Oracle.
func (o *OLH) Domain() int { return o.d }

// olhG is the optimal local-hashing range g = ⌊e^ε⌋+1 shared by OLH and
// OLH-C.
func olhG(eps float64) int {
	g := int(math.Floor(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	return g
}

func (o *OLH) g(eps float64) int { return olhG(eps) }

// olhHash maps (seed, value) to a bucket in [0, g). It is a 64-bit
// mix of the seed and value (stdlib-only stand-in for xxhash).
func olhHash(seed uint64, v int, g int) int {
	x := seed ^ (uint64(v)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(g))
}

// Perturb implements Oracle.
func (o *OLH) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= o.d {
		panic(fmt.Sprintf("fo: OLH value %d outside domain [0,%d)", v, o.d))
	}
	g := o.g(eps)
	seed := src.Uint64()
	h := olhHash(seed, v, g)
	// GRR over the g buckets.
	e := math.Exp(eps)
	p := e / (e + float64(g) - 1)
	out := h
	if !src.Bernoulli(p) {
		out = src.Intn(g - 1)
		if out >= h {
			out++
		}
	}
	return Report{Kind: KindHash, Value: out, Seed: seed}
}

// Estimate implements Oracle.
func (o *OLH) Estimate(reports []Report, eps float64) ([]float64, error) {
	return batchEstimate(o, reports, eps)
}

// Variance implements Oracle. For OLH the well-known approximation is
// 4e^ε/(n(e^ε-1)^2); the fk-dependent term is second-order and omitted.
func (o *OLH) Variance(eps float64, n int, fk float64) float64 {
	return o.VarianceApprox(eps, n)
}

// VarianceApprox implements Oracle.
func (o *OLH) VarianceApprox(eps float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}

// ---------------------------------------------------------------------------
// OLH-C: cohort-hashed Optimized Local Hashing.
// ---------------------------------------------------------------------------

// DefaultCohorts is the cohort count used by NewOLHC. It is large enough
// that the cohort-sampling term of the estimator variance is negligible
// next to the GRR-over-g noise, yet small enough that the server's k×g
// count matrix and k×d bucket table stay cheap.
const DefaultCohorts = 128

// OLHC implements cohort-hashed Optimized Local Hashing ("OLH-C"). It
// runs the same GRR-over-g-buckets core as OLH (g = ⌊e^ε⌋+1), but instead
// of a private per-user hash seed each user draws one of k public cohorts
// and hashes with the cohort's seed. Publicity of the seeds buys a
// domain-independent server fold: a report lands in cell (cohort, bucket)
// of a k×g count matrix in O(1), and Estimate reconstructs per-element
// support counts in O(k·d) via a precomputed cohort×element bucket table
// — O(n + k·g + k·d) per round in total, against OLH's O(n·d).
//
// Privacy is unchanged: the ε-LDP guarantee comes from the GRR
// perturbation over the g buckets, not from seed secrecy (OLH's seed is
// public to the server too — it arrives in the report). Accuracy matches
// OLH up to a cohort-sampling term that vanishes as k grows: the variance
// approximation 4e^ε/(n(e^ε-1)^2) carries over unchanged
// (TestOLHCVarianceMatchesFormula checks it empirically), and — as in
// RAPPOR's cohort design — fixed cohort seeds add a per-element bias of
// order √(Σ_v f_v² / k)·(1-1/g). In OLH-C's target regime (large domains
// with spread-out mass) that term is negligible; for tiny domains with one
// dominant element, raise k via NewOLHCCohorts or prefer GRR/OLH.
type OLHC struct {
	d int
	k int

	mu     sync.Mutex
	tables map[int][]int32 // g → row-major k×d cohort×element bucket table
}

// NewOLHC returns an OLH-C oracle for domain size d with DefaultCohorts
// cohorts.
func NewOLHC(d int) *OLHC { return NewOLHCCohorts(d, DefaultCohorts) }

// NewOLHCCohorts returns an OLH-C oracle for domain size d with k public
// cohorts (k >= 2). Larger k tracks OLH's accuracy more closely; smaller k
// shrinks the server's count matrix and bucket table.
func NewOLHCCohorts(d, k int) *OLHC {
	checkDomain(d)
	if k < 2 {
		panic(fmt.Sprintf("fo: OLH-C cohort count must be >= 2, got %d", k))
	}
	return &OLHC{d: d, k: k, tables: make(map[int][]int32)}
}

// Name implements Oracle.
func (o *OLHC) Name() string { return "OLH-C" }

// Domain implements Oracle.
func (o *OLHC) Domain() int { return o.d }

// Cohorts returns the number of public cohorts k.
func (o *OLHC) Cohorts() int { return o.k }

// cohortSeed derives cohort c's public hash seed (SplitMix64 finalizer of
// the cohort index): both clients and the server can compute it, so no
// seed ever needs to travel beyond the small cohort index.
func cohortSeed(c int) uint64 {
	x := uint64(c)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bucketTable returns the cohort×element bucket table for hashing range g
// (row-major: entry c*d+v is olhHash(cohortSeed(c), v, g)), computing and
// caching it on first use. Mechanisms estimate every timestamp, so the
// O(k·d) table is built once per (oracle, ε) and amortized across rounds.
func (o *OLHC) bucketTable(g int) []int32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t, ok := o.tables[g]; ok {
		return t
	}
	t := make([]int32, o.k*o.d)
	for c := 0; c < o.k; c++ {
		seed := cohortSeed(c)
		row := t[c*o.d : (c+1)*o.d]
		for v := range row {
			row[v] = int32(olhHash(seed, v, g))
		}
	}
	o.tables[g] = t
	return t
}

// Perturb implements Oracle: draw a public cohort uniformly, hash the true
// value with the cohort's seed, and run GRR over the g buckets.
func (o *OLHC) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= o.d {
		panic(fmt.Sprintf("fo: OLH-C value %d outside domain [0,%d)", v, o.d))
	}
	g := olhG(eps)
	c := src.Intn(o.k)
	h := olhHash(cohortSeed(c), v, g)
	e := math.Exp(eps)
	p := e / (e + float64(g) - 1)
	out := h
	if !src.Bernoulli(p) {
		out = src.Intn(g - 1)
		if out >= h {
			out++
		}
	}
	return Report{Kind: KindCohort, Value: out, Seed: uint64(c)}
}

// Estimate implements Oracle.
func (o *OLHC) Estimate(reports []Report, eps float64) ([]float64, error) {
	return batchEstimate(o, reports, eps)
}

// Variance implements Oracle: the GRR-over-g core is OLH's, so the OLH
// approximation carries over (the cohort-sampling term is O(1/k) of it and
// omitted, like OLH's fk-dependent term).
func (o *OLHC) Variance(eps float64, n int, fk float64) float64 {
	return o.VarianceApprox(eps, n)
}

// VarianceApprox implements Oracle: 4e^ε/(n(e^ε-1)^2), as for OLH.
func (o *OLHC) VarianceApprox(eps float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}

// ---------------------------------------------------------------------------
// Registry and adaptive selection.
// ---------------------------------------------------------------------------

// registry maps canonical oracle names to constructors, in presentation
// order. New resolves names against it case-insensitively; Names exposes
// it so command-line tools list exactly the oracles that actually
// construct.
var registry = []struct {
	name string
	make func(d int) Oracle
}{
	{"GRR", func(d int) Oracle { return NewGRR(d) }},
	{"OUE", func(d int) Oracle { return NewOUE(d) }},
	{"SUE", func(d int) Oracle { return NewSUE(d) }},
	{"OLH", func(d int) Oracle { return NewOLH(d) }},
	{"OLH-C", func(d int) Oracle { return NewOLHC(d) }},
	{"OUE-packed", func(d int) Oracle { return NewOUEPacked(d) }},
	{"SUE-packed", func(d int) Oracle { return NewSUEPacked(d) }},
}

// Names returns the canonical name of every registered oracle, in
// presentation order. Each is accepted by New (case-insensitively).
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// New constructs an oracle by registry name (see Names; matching is
// case-insensitive) for domain size d. It returns an error naming the
// known oracles for unknown names.
func New(name string, d int) (Oracle, error) {
	for _, e := range registry {
		if strings.EqualFold(name, e.name) {
			return e.make(d), nil
		}
	}
	return nil, fmt.Errorf("fo: unknown oracle %q (known: %s)", name, strings.Join(Names(), " "))
}

// Best returns the lower-variance oracle between GRR and OUE for the given
// (d, ε), following the standard d < 3e^ε+2 rule.
func Best(d int, eps float64) Oracle {
	if float64(d) < 3*math.Exp(eps)+2 {
		return NewGRR(d)
	}
	return NewOUE(d)
}
