package fo_test

import (
	"fmt"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// ExampleAggregator streams one collection round through an oracle's
// aggregator: clients perturb locally, the server folds each report into
// O(d) counters as it arrives and estimates once at the end of the round.
func ExampleAggregator() {
	const n = 30000
	oracle := fo.NewGRR(3)
	src := ldprand.New(7)

	agg, err := oracle.NewAggregator(1.0)
	if err != nil {
		panic(err)
	}
	for u := 0; u < n; u++ {
		trueValue := u % 3 // each value held by 1/3 of the users
		if err := agg.Add(oracle.Perturb(trueValue, 1.0, src)); err != nil {
			panic(err)
		}
	}

	est, err := agg.Estimate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("reports folded: %d\n", agg.Reports())
	for k, e := range est {
		fmt.Printf("f(%d) = %.2f\n", k, e)
	}
	// Output:
	// reports folded: 30000
	// f(0) = 0.32
	// f(1) = 0.33
	// f(2) = 0.34
}

// ExampleNew constructs oracles by registry name — the route the
// command-line binaries take — and shows the cohort-hashed OLH variant
// whose server fold is domain-independent.
func ExampleNew() {
	for _, name := range []string{"GRR", "olh", "OLH-C"} {
		o, err := fo.New(name, 4096)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s over domain %d\n", o.Name(), o.Domain())
	}
	// Output:
	// GRR over domain 4096
	// OLH over domain 4096
	// OLH-C over domain 4096
}
