package fo

import (
	"fmt"
)

// FrameShape selects a CounterFrame's counter layout. The zero value is
// deliberately invalid — mirroring Report.Kind, a frame whose shape was
// never set explicitly must fail loudly at Validate instead of being
// misread as per-element counts (the PR 1 KindValue bug class, at the
// counter level).
type FrameShape uint8

const (
	// FrameCounts is per-element counter state: Counts[k] is the number of
	// reports supporting element k (GRR, OUE, SUE, OLH after rehashing).
	FrameCounts FrameShape = iota + 1
	// FrameCohort is cohort-matrix counter state: Counts is the row-major
	// K×G matrix of (cohort, bucket) report counts (OLH-C).
	FrameCohort
)

// String renders the shape for diagnostics.
func (s FrameShape) String() string {
	switch s {
	case FrameCounts:
		return "counts"
	case FrameCohort:
		return "cohort"
	default:
		return fmt.Sprintf("FrameShape(%d)", uint8(s))
	}
}

// CounterFrame is one aggregator's integer counter state, exported for
// shipment across a process boundary: a cluster ingestion replica folds
// its shard's reports locally and ships one frame per round to the
// coordinator instead of forwarding raw reports. Counter merges are
// commutative integer addition, so merging frames in any grouping is
// bit-identical to folding every underlying report into one aggregator —
// the collecttest bit-identity bar extended across processes.
//
// Shape is explicit and mandatory: every consumer must switch on it (or
// reject it), never guess the layout from the slice length.
type CounterFrame struct {
	// Shape selects the Counts layout; the zero value fails Validate.
	Shape FrameShape
	// N is the number of reports folded into the counters.
	N int
	// K and G are the cohort-matrix dimensions (FrameCohort only):
	// Counts[c*G+b] counts reports from cohort c in bucket b.
	K, G int
	// Counts is the counter payload, laid out per Shape.
	Counts []int64
}

// Validate checks the frame's structural invariants: a known shape, a
// non-negative report count, and (for cohort frames) matrix dimensions
// that agree with the payload length.
func (f CounterFrame) Validate() error {
	if f.N < 0 {
		return fmt.Errorf("fo: counter frame with negative report count %d", f.N)
	}
	switch f.Shape {
	case FrameCounts:
		if f.K != 0 || f.G != 0 {
			return fmt.Errorf("fo: counts frame carries cohort dimensions %dx%d", f.K, f.G)
		}
		return nil
	case FrameCohort:
		if f.K < 1 || f.G < 1 {
			return fmt.Errorf("fo: cohort frame with non-positive dimensions %dx%d", f.K, f.G)
		}
		if len(f.Counts) != f.K*f.G {
			return fmt.Errorf("fo: cohort frame payload has %d counters, want %d (%dx%d)",
				len(f.Counts), f.K*f.G, f.K, f.G)
		}
		return nil
	default:
		return fmt.Errorf("fo: counter frame with unknown shape %s", f.Shape)
	}
}

// WireSize returns the frame's deterministic wire size in bytes for
// communication accounting: the counter words plus a fixed header
// (shape, report count, dimensions, length). Accounting must not depend
// on a particular encoder's framing, so this is the flat binary size,
// not e.g. gob's.
func (f CounterFrame) WireSize() int { return 24 + 8*len(f.Counts) }

// add folds another frame of the same shape and dimensions into f.
func (f *CounterFrame) add(g CounterFrame) error {
	if g.Shape != f.Shape || g.K != f.K || g.G != f.G || len(g.Counts) != len(f.Counts) {
		return fmt.Errorf("fo: cannot add %s frame (%d counters, %dx%d) into %s frame (%d counters, %dx%d)",
			g.Shape, len(g.Counts), g.K, g.G, f.Shape, len(f.Counts), f.K, f.G)
	}
	f.N += g.N
	for i, v := range g.Counts {
		f.Counts[i] += v
	}
	return nil
}

// frameCarrier is satisfied by every built-in aggregator (via countCore or
// cohortCore) and by StripedAggregator: it exports the aggregator's
// counter state as a CounterFrame and merges a compatible frame back in.
// It stays unexported like shardMergeable — ExportCounters/MergeCounters
// are the public entry points, so the validation there cannot be skipped.
type frameCarrier interface {
	exportFrame() (CounterFrame, error)
	mergeFrame(f CounterFrame) error
}

// ExportCounters returns the aggregator's folded integer counter state as
// a self-describing CounterFrame (a copy — later folds do not alias it).
// It fails for aggregators that are not counter-based.
func ExportCounters(agg Aggregator) (CounterFrame, error) {
	fc, ok := agg.(frameCarrier)
	if !ok {
		return CounterFrame{}, fmt.Errorf("fo: %T does not support counter export", agg)
	}
	return fc.exportFrame()
}

// MergeCounters folds an exported counter frame into the aggregator, as
// if every report behind the frame had been added locally: integer
// addition commutes, so the merged estimate is bit-identical regardless
// of how reports were partitioned into frames. The frame must match the
// aggregator's oracle shape and dimensions.
func MergeCounters(agg Aggregator, f CounterFrame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	fc, ok := agg.(frameCarrier)
	if !ok {
		return fmt.Errorf("fo: %T does not support counter merging", agg)
	}
	return fc.mergeFrame(f)
}

// exportFrame implements frameCarrier for every count-based aggregator.
func (c *countCore) exportFrame() (CounterFrame, error) {
	return CounterFrame{
		Shape:  FrameCounts,
		N:      c.n,
		Counts: append([]int64(nil), c.counts...),
	}, nil
}

// mergeFrame implements frameCarrier for every count-based aggregator.
func (c *countCore) mergeFrame(f CounterFrame) error {
	if f.Shape != FrameCounts {
		return fmt.Errorf("fo: cannot merge %s frame into a count-based aggregator", f.Shape)
	}
	if len(f.Counts) != len(c.counts) {
		return fmt.Errorf("fo: counts frame has %d counters, aggregator wants %d", len(f.Counts), len(c.counts))
	}
	c.n += f.N
	for k, v := range f.Counts {
		c.counts[k] += v
	}
	return nil
}

// exportFrame implements frameCarrier for cohort-matrix aggregators.
func (c *cohortCore) exportFrame() (CounterFrame, error) {
	return CounterFrame{
		Shape:  FrameCohort,
		N:      c.n,
		K:      c.k,
		G:      c.g,
		Counts: append([]int64(nil), c.matrix...),
	}, nil
}

// mergeFrame implements frameCarrier for cohort-matrix aggregators.
func (c *cohortCore) mergeFrame(f CounterFrame) error {
	if f.Shape != FrameCohort {
		return fmt.Errorf("fo: cannot merge %s frame into a cohort-based aggregator", f.Shape)
	}
	if f.K != c.k || f.G != c.g {
		return fmt.Errorf("fo: cohort frame is %dx%d, aggregator wants %dx%d", f.K, f.G, c.k, c.g)
	}
	c.n += f.N
	for i, v := range f.Counts {
		c.matrix[i] += v
	}
	return nil
}

// exportFrame implements frameCarrier: the summed counter state of every
// stripe. Per-stripe counters are read under their stripe locks, like
// Reports; after Estimate merged the stripes, stripe 0 alone holds the
// total (the merge does not zero its sources), so only it is exported.
func (s *StripedAggregator) exportFrame() (CounterFrame, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.merged {
		st := &s.stripes[0]
		st.mu.Lock()
		defer st.mu.Unlock()
		return exportStripe(st.agg)
	}
	var out CounterFrame
	for i := range s.stripes {
		f, err := func(st *lockedStripe) (CounterFrame, error) {
			st.mu.Lock()
			defer st.mu.Unlock()
			return exportStripe(st.agg)
		}(&s.stripes[i])
		if err != nil {
			return CounterFrame{}, err
		}
		if i == 0 {
			out = f
			continue
		}
		if err := out.add(f); err != nil {
			return CounterFrame{}, err
		}
	}
	return out, nil
}

// exportStripe exports one stripe's aggregator; the caller holds the
// stripe lock.
func exportStripe(agg shardMergeable) (CounterFrame, error) {
	fc, ok := agg.(frameCarrier)
	if !ok {
		return CounterFrame{}, fmt.Errorf("fo: stripe aggregator %T does not support counter export", agg)
	}
	return fc.exportFrame()
}

// mergeFrame implements frameCarrier: the frame folds into stripe 0,
// under its stripe lock, concurrently with folds into other stripes.
// Merging after Estimate fails like AddStripe does.
func (s *StripedAggregator) mergeFrame(f CounterFrame) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.merged {
		return errStripedEstimated
	}
	st := &s.stripes[0]
	st.mu.Lock()
	defer st.mu.Unlock()
	fc, ok := st.agg.(frameCarrier)
	if !ok {
		return fmt.Errorf("fo: stripe aggregator %T does not support counter merging", st.agg)
	}
	return fc.mergeFrame(f)
}
