package mechanism

import (
	"ldpids/internal/window"
)

// ---------------------------------------------------------------------------
// LBU: LDP Budget Uniform (§5.2.1).
// ---------------------------------------------------------------------------

// LBU evenly assigns ε/w to every timestamp: all users report via the FO
// with the fixed per-timestamp budget, and the server releases a fresh
// estimate each time.
type LBU struct {
	p Params
}

// NewLBU constructs the uniform budget-division baseline.
func NewLBU(p Params) (*LBU, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &LBU{p: p}, nil
}

// Name implements Mechanism.
func (m *LBU) Name() string { return "LBU" }

// Step implements Mechanism.
func (m *LBU) Step(env Env) ([]float64, error) {
	eps := m.p.Eps / float64(m.p.W)
	return estimate(env, m.p.Oracle, nil, eps)
}

// ---------------------------------------------------------------------------
// LSP: LDP Sampling (§5.2.2).
// ---------------------------------------------------------------------------

// LSP invests the entire budget ε at one sampling timestamp per window and
// approximates the remaining w-1 timestamps with the last release.
type LSP struct {
	p    Params
	last []float64
	t    int
}

// NewLSP constructs the sampling baseline. Sampling happens at timestamps
// 1, w+1, 2w+1, ....
func NewLSP(p Params) (*LSP, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &LSP{p: p, last: zeros(p.d())}, nil
}

// Name implements Mechanism.
func (m *LSP) Name() string { return "LSP" }

// Step implements Mechanism.
func (m *LSP) Step(env Env) ([]float64, error) {
	m.t++
	if (m.t-1)%m.p.W == 0 {
		est, err := estimate(env, m.p.Oracle, nil, m.p.Eps)
		if err != nil {
			return nil, err
		}
		m.last = est
	}
	return copyVec(m.last), nil
}

// ---------------------------------------------------------------------------
// LBD: LDP Budget Distribution (Algorithm 1).
// ---------------------------------------------------------------------------

// LBD adaptively chooses, at every timestamp, between publishing a fresh
// estimate and re-releasing the previous one. Half the window budget funds
// per-timestamp dissimilarity estimation (ε/2w each); the other half is
// distributed to publications in an exponentially decreasing way: each
// publication takes half of the publication budget still unclaimed in the
// active window.
type LBD struct {
	p      Params
	pubLed *window.Ledger // ε_{t,2} per timestamp over the last w-1 entries
	last   []float64
}

// NewLBD constructs the budget-distribution mechanism (Algorithm 1).
func NewLBD(p Params) (*LBD, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	// The remaining-budget rule sums ε_{i,2} over i ∈ [t-w+1, t-1]: a
	// window of w-1 previous timestamps.
	lw := p.W - 1
	if lw < 1 {
		lw = 1
	}
	return &LBD{p: p, pubLed: window.NewLedger(lw), last: zeros(p.d())}, nil
}

// Name implements Mechanism.
func (m *LBD) Name() string { return "LBD" }

// Step implements Mechanism.
func (m *LBD) Step(env Env) ([]float64, error) {
	// Sub-mechanism M_{t,1}: private dissimilarity estimation with the
	// fixed per-timestamp dissimilarity budget (ε/2w under the paper's
	// even split).
	eps1 := m.p.disFrac() * m.p.Eps / float64(m.p.W)
	c1, err := estimate(env, m.p.Oracle, nil, eps1)
	if err != nil {
		return nil, err
	}
	dis := dissimilarity(c1, m.last, publicationError(m.p.Oracle, eps1, env.N()))

	// Sub-mechanism M_{t,2}: strategy determination. The potential
	// publication budget is half the publication budget remaining in the
	// active window.
	epsRM := m.pubLed.Remaining((1 - m.p.disFrac()) * m.p.Eps)
	eps2 := epsRM / 2
	errPub := publicationError(m.p.Oracle, eps2, env.N())

	if dis > errPub && eps2 > 0 {
		// Publication strategy.
		c2, err := estimate(env, m.p.Oracle, nil, eps2)
		if err != nil {
			return nil, err
		}
		m.pubLed.Append(eps2)
		m.last = c2
		return copyVec(c2), nil
	}
	// Approximation strategy: no publication budget consumed.
	m.pubLed.Append(0)
	return copyVec(m.last), nil
}

// ---------------------------------------------------------------------------
// LBA: LDP Budget Absorption (Algorithm 2).
// ---------------------------------------------------------------------------

// LBA uniformly earmarks ε/(2w) publication budget per timestamp, lets
// publications absorb the budget of preceding approximated timestamps, and
// nullifies the earmarks of enough succeeding timestamps to pay the loan.
type LBA struct {
	p       Params
	last    []float64
	t       int
	lastPub int     // l: timestamp of the last publication (0 = none)
	epsPub  float64 // ε_{l,2}: budget spent at the last publication
	pubLed  *window.Ledger
}

// NewLBA constructs the budget-absorption mechanism (Algorithm 2).
func NewLBA(p Params) (*LBA, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &LBA{p: p, last: zeros(p.d()), pubLed: window.NewLedger(p.W)}, nil
}

// Name implements Mechanism.
func (m *LBA) Name() string { return "LBA" }

// Step implements Mechanism.
func (m *LBA) Step(env Env) ([]float64, error) {
	m.t++
	disUnit := m.p.disFrac() * m.p.Eps / float64(m.p.W)
	unit := (1 - m.p.disFrac()) * m.p.Eps / float64(m.p.W)

	// Sub-mechanism M_{t,1}: identical to LBD.
	c1, err := estimate(env, m.p.Oracle, nil, disUnit)
	if err != nil {
		return nil, err
	}
	dis := dissimilarity(c1, m.last, publicationError(m.p.Oracle, disUnit, env.N()))

	// Sub-mechanism M_{t,2}: nullification after a large publication.
	// t_N = ε_{l,2}/(ε/2w) - 1 timestamps following l must forfeit their
	// earmarked budget.
	tN := 0
	if m.epsPub > 0 {
		tN = int(m.epsPub/unit) - 1
	}
	if m.lastPub > 0 && m.t-m.lastPub <= tN {
		m.pubLed.Append(0)
		return copyVec(m.last), nil
	}

	// Absorption: the budget of timestamps since the nullified span can
	// be claimed, capped at w earmarks.
	tA := m.t - (m.lastPub + tN)
	if tA > m.p.W {
		tA = m.p.W
	}
	eps2 := unit * float64(tA)
	errPub := publicationError(m.p.Oracle, eps2, env.N())

	if dis > errPub {
		c2, err := estimate(env, m.p.Oracle, nil, eps2)
		if err != nil {
			return nil, err
		}
		m.pubLed.Append(eps2)
		m.last = c2
		m.lastPub = m.t
		m.epsPub = eps2
		return copyVec(c2), nil
	}
	m.pubLed.Append(0)
	return copyVec(m.last), nil
}
