package mechanism

import (
	"fmt"
	"math"
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

// runOn executes the named mechanism over a binary Sin stream and returns
// the result with auditing enabled.
func runOn(t *testing.T, name string, n, w, T int, eps float64, seed uint64) *RunResult {
	t.Helper()
	root := ldprand.New(seed)
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	oracle := fo.NewGRR(2)
	p := Params{Eps: eps, W: w, N: n, Oracle: oracle, Src: root.Split()}
	m, err := New(name, p)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	acct := privacy.NewAccountant(eps, w, n, root.Split())
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, err := r.Run(m, T)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

// mre computes the mean relative error of a run over elements with
// non-negligible true frequency.
func mre(res *RunResult) float64 {
	sum, cnt := 0.0, 0
	for t := range res.True {
		for k := range res.True[t] {
			c := res.True[t][k]
			if c < 0.01 {
				continue
			}
			sum += math.Abs(res.Released[t][k]-c) / c
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func TestAllMechanismsRunAndSatisfyWEventLDP(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runOn(t, name, 4000, 10, 60, 1.0, 777)
			if len(res.Released) != 60 {
				t.Fatalf("released %d timestamps", len(res.Released))
			}
			if len(res.Violations) != 0 {
				t.Fatalf("w-event LDP violated: %v", res.Violations[0])
			}
		})
	}
}

func TestPrivacyHoldsAcrossParameters(t *testing.T) {
	// Sweep (eps, w) across realistic ranges; the audited invariant must
	// hold everywhere.
	for _, eps := range []float64{0.5, 1, 2.5} {
		for _, w := range []int{2, 5, 20} {
			for _, name := range Names {
				res := runOn(t, name, 1200, w, 3*w+7, eps, uint64(100*w)+uint64(eps*10))
				if len(res.Violations) != 0 {
					t.Fatalf("%s eps=%v w=%d: %v", name, eps, w, res.Violations[0])
				}
			}
		}
	}
}

func TestPopulationMethodsReportAtMostOncePerWindow(t *testing.T) {
	for _, name := range PopulationDivisionNames {
		root := ldprand.New(991)
		n, w, T := 2000, 8, 50
		s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
		oracle := fo.NewGRR(2)
		m, err := New(name, Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: root.Split()})
		if err != nil {
			t.Fatal(err)
		}
		acct := privacy.NewAccountant(1, w, n, root.Split())
		r := &Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
		if _, err := r.Run(m, T); err != nil {
			t.Fatal(err)
		}
		if got := acct.MaxReportsPerWindow(); got > 1 {
			t.Errorf("%s: a user reported %d times in one window", name, got)
		}
	}
}

func TestBudgetMethodsUseBudgetEveryTimestamp(t *testing.T) {
	// LBU/LBD/LBA have every user reporting at every timestamp (at least
	// the dissimilarity report), so CFPU >= 1.
	for _, name := range BudgetDivisionNames {
		res := runOn(t, name, 500, 5, 30, 1.0, 555)
		if res.Comm.CFPU < 0.999 {
			t.Errorf("%s: CFPU %.3f < 1", name, res.Comm.CFPU)
		}
	}
}

func TestPopulationMethodsCommunicateLess(t *testing.T) {
	// Population division: CFPU ≈ 1/w or below-ish (LPD < 1/w; LPA
	// between 1/2w and 1/w + w+m/4w^2).
	w := 10
	for _, name := range PopulationDivisionNames {
		res := runOn(t, name, 5000, w, 60, 1.0, 333)
		if res.Comm.CFPU > 1.5/float64(w) {
			t.Errorf("%s: CFPU %.4f exceeds 1.5/w", name, res.Comm.CFPU)
		}
	}
}

func TestLSPReleasesChangeOnlyAtSamplingPoints(t *testing.T) {
	res := runOn(t, "LSP", 1000, 5, 20, 1.0, 222)
	for ts := 0; ts < 20; ts++ {
		if ts%5 == 0 {
			continue // sampling timestamp: fresh release
		}
		for k := range res.Released[ts] {
			if res.Released[ts][k] != res.Released[ts-1][k] {
				t.Fatalf("LSP changed release at non-sampling t=%d", ts+1)
			}
		}
	}
}

func TestLPUFreshEveryTimestamp(t *testing.T) {
	// LPU publishes fresh estimates each timestamp; consecutive releases
	// should (almost surely) differ.
	res := runOn(t, "LPU", 4000, 8, 20, 1.0, 111)
	changes := 0
	for ts := 1; ts < 20; ts++ {
		for k := range res.Released[ts] {
			if res.Released[ts][k] != res.Released[ts-1][k] {
				changes++
				break
			}
		}
	}
	if changes < 15 {
		t.Fatalf("LPU releases changed only %d/19 times", changes)
	}
}

func TestMechanismUtilityOrdering(t *testing.T) {
	// The paper's headline: population division beats budget division.
	// Compare LPU vs LBU and LPA vs LBA on the same stream shape.
	avg := func(name string) float64 {
		total := 0.0
		const reps = 3
		for i := 0; i < reps; i++ {
			res := runOn(t, name, 20000, 20, 80, 1.0, 4000+uint64(i))
			total += mre(res)
		}
		return total / reps
	}
	lbu, lpu := avg("LBU"), avg("LPU")
	if lpu >= lbu {
		t.Errorf("LPU MRE %.4f not below LBU %.4f", lpu, lbu)
	}
	lba, lpa := avg("LBA"), avg("LPA")
	if lpa >= lba {
		t.Errorf("LPA MRE %.4f not below LBA %.4f", lpa, lba)
	}
}

func TestAdaptiveBeatsUniformOnSmoothStream(t *testing.T) {
	// On a nearly-constant stream, adaptive methods should approximate
	// often and beat the uniform baseline.
	root := ldprand.New(808)
	n, w, T := 20000, 20, 100
	oracle := fo.NewGRR(2)
	run := func(name string) float64 {
		s := stream.NewBinaryStream(n, stream.NewSin(0.001, 0.01, 0.1), ldprand.New(909).Split())
		m, err := New(name, Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: root.Split()})
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Stream: s, Oracle: oracle, Src: root.Split()}
		res, err := r.Run(m, T)
		if err != nil {
			t.Fatal(err)
		}
		return mre(res)
	}
	lpu, lpa := run("LPU"), run("LPA")
	if lpa >= lpu {
		t.Errorf("on a flat stream LPA MRE %.4f should beat LPU %.4f", lpa, lpu)
	}
}

func TestReleasesAreIndependentCopies(t *testing.T) {
	// Mutating a returned release must not corrupt mechanism state.
	root := ldprand.New(404)
	n := 1000
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	oracle := fo.NewGRR(2)
	m, _ := NewLSP(Params{Eps: 1, W: 4, N: n, Oracle: oracle, Src: root.Split()})
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := r.Run(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	res.Released[1][0] = 999
	if res.Released[2][0] == 999 {
		t.Fatal("releases alias each other")
	}
}

func TestParamValidation(t *testing.T) {
	src := ldprand.New(1)
	oracle := fo.NewGRR(2)
	good := Params{Eps: 1, W: 5, N: 100, Oracle: oracle, Src: src}
	for _, name := range Names {
		if _, err := New(name, good); err != nil {
			t.Errorf("%s rejected valid params: %v", name, err)
		}
	}
	bads := []Params{
		{Eps: 0, W: 5, N: 100, Oracle: oracle, Src: src},
		{Eps: 1, W: 0, N: 100, Oracle: oracle, Src: src},
		{Eps: 1, W: 5, N: 0, Oracle: oracle, Src: src},
		{Eps: 1, W: 5, N: 100, Oracle: nil, Src: src},
		{Eps: 1, W: 5, N: 100, Oracle: oracle, Src: nil},
	}
	for i, bad := range bads {
		if _, err := NewLBD(bad); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := New("XXX", good); err == nil {
		t.Error("unknown mechanism name accepted")
	}
	// Population methods need enough users per group.
	if _, err := NewLPD(Params{Eps: 1, W: 50, N: 60, Oracle: oracle, Src: src}); err == nil {
		t.Error("LPD accepted N < 2w")
	}
	if _, err := NewLPA(Params{Eps: 1, W: 50, N: 60, Oracle: oracle, Src: src}); err == nil {
		t.Error("LPA accepted N < 2w")
	}
	if _, err := NewLPU(Params{Eps: 1, W: 50, N: 20, Oracle: oracle, Src: src}); err == nil {
		t.Error("LPU accepted N < w")
	}
}

func TestPoolDrawReturn(t *testing.T) {
	src := ldprand.New(13)
	p := NewPool(10, src)
	if p.Available() != 10 {
		t.Fatal("initial availability")
	}
	u, err := p.Draw(4)
	if err != nil || len(u) != 4 {
		t.Fatalf("draw: %v %v", u, err)
	}
	if p.Available() != 6 {
		t.Fatal("availability after draw")
	}
	seen := map[int]bool{}
	for _, x := range u {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("bad draw %v", u)
		}
		seen[x] = true
	}
	if _, err := p.Draw(7); err == nil {
		t.Fatal("overdraw accepted")
	}
	p.Return(u)
	if p.Available() != 10 {
		t.Fatal("availability after return")
	}
	if _, err := p.Draw(-1); err == nil {
		t.Fatal("negative draw accepted")
	}
}

func TestPoolDrawDisjoint(t *testing.T) {
	src := ldprand.New(17)
	p := NewPool(100, src)
	a, _ := p.Draw(30)
	b, _ := p.Draw(30)
	inA := map[int]bool{}
	for _, x := range a {
		inA[x] = true
	}
	for _, x := range b {
		if inA[x] {
			t.Fatalf("user %d drawn twice without return", x)
		}
	}
}

func TestUsedRing(t *testing.T) {
	r := newUsedRing(3)
	r.record(1, []int{1, 2})
	r.record(1, []int{3})
	r.record(2, []int{4})
	got := r.take(1)
	if len(got) != 3 {
		t.Fatalf("take(1) = %v", got)
	}
	if len(r.take(1)) != 0 {
		t.Fatal("double take returned users")
	}
	if len(r.take(2)) != 1 {
		t.Fatal("take(2) lost users")
	}
}

func TestDissimilarityUnbiasedOnStaticStream(t *testing.T) {
	// With c_t == r_l exactly, E[dis] should be ~0 (the variance term
	// cancels the squared noise).
	root := ldprand.New(606)
	oracle := fo.NewGRR(2)
	trueHist := []float64{0.9, 0.1}
	n := 5000
	eps := 1.0
	sum := 0.0
	const reps = 400
	src := root.Split()
	for i := 0; i < reps; i++ {
		reports := make([]fo.Report, n)
		for u := 0; u < n; u++ {
			v := 0
			if src.Bernoulli(trueHist[1]) {
				v = 1
			}
			reports[u] = oracle.Perturb(v, eps, src)
		}
		est, err := oracle.Estimate(reports, eps)
		if err != nil {
			t.Fatal(err)
		}
		sum += dissimilarity(est, trueHist, oracle.VarianceApprox(eps, n))
	}
	mean := sum / reps
	// The residual is the data-sampling variance f(1-f)/n ≈ 1.8e-5.
	if math.Abs(mean) > 2e-4 {
		t.Fatalf("dissimilarity mean %v not ~0 on static stream", mean)
	}
}

func TestLBADissimilarBudgetLedgerWithinCap(t *testing.T) {
	// Run LBA and inspect that publications never exceed eps/2 within a
	// window via the accountant's max spend.
	root := ldprand.New(515)
	n, w := 3000, 6
	s := stream.NewBinaryStream(n, stream.DefaultLNS(root.Split()), root.Split())
	oracle := fo.NewGRR(2)
	m, _ := NewLBA(Params{Eps: 2, W: w, N: n, Oracle: oracle, Src: root.Split()})
	acct := privacy.NewAccountant(2, w, n, root.Split())
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	if _, err := r.Run(m, 50); err != nil {
		t.Fatal(err)
	}
	if v := acct.Check(1e-9); len(v) != 0 {
		t.Fatalf("LBA violated budget: %v", v[0])
	}
	if spend := acct.MaxWindowSpend(); spend > 2+1e-9 {
		t.Fatalf("max window spend %v > eps", spend)
	}
}

func TestRunnerStopsAtStreamEnd(t *testing.T) {
	root := ldprand.New(616)
	n := 200
	s := stream.Limit(stream.NewBinaryStream(n, stream.DefaultSin(), root.Split()), 5)
	oracle := fo.NewGRR(2)
	m, _ := NewLBU(Params{Eps: 1, W: 3, N: n, Oracle: oracle, Src: root.Split()})
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := r.Run(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Released) != 5 {
		t.Fatalf("run produced %d timestamps, want 5 (stream end)", len(res.Released))
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runOn(t, "LPA", 1500, 6, 30, 1.0, 2024)
	b := runOn(t, "LPA", 1500, 6, 30, 1.0, 2024)
	for ts := range a.Released {
		for k := range a.Released[ts] {
			if a.Released[ts][k] != b.Released[ts][k] {
				t.Fatalf("same-seed runs diverged at t=%d", ts+1)
			}
		}
	}
}

func TestCollectRejectsBadRequests(t *testing.T) {
	current := make([]int, 10)
	env := newSimEnv(10, fo.NewGRR(2), ldprand.New(1), &current, nil)
	env.Advance(1)
	if _, err := env.Collect(nil, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := env.Collect([]int{99}, 1); err == nil {
		t.Fatal("unknown user accepted")
	}
}

// hookMech is a scripted mechanism for testing Hooked: it releases a fixed
// vector and can be told to fail.
type hookMech struct {
	release []float64
	fail    bool
}

func (m *hookMech) Name() string { return "hook" }
func (m *hookMech) Step(env Env) ([]float64, error) {
	if m.fail {
		return nil, errHook
	}
	return m.release, nil
}

var errHook = fmt.Errorf("hook mechanism failure")

func TestHookedReleaseHook(t *testing.T) {
	inner := &hookMech{release: []float64{0.25, 0.75}}
	var gotT int
	var gotRelease []float64
	h := Hooked{Mechanism: inner, OnRelease: func(ts int, r []float64) {
		gotT = ts
		gotRelease = append([]float64(nil), r...)
	}}
	if h.Name() != "hook" {
		t.Fatalf("Hooked.Name = %q", h.Name())
	}
	current := make([]int, 4)
	env := newSimEnv(4, fo.NewGRR(2), ldprand.New(1), &current, nil)
	env.Advance(7)
	release, err := h.Step(env)
	if err != nil {
		t.Fatal(err)
	}
	if gotT != 7 {
		t.Fatalf("hook saw t=%d, want 7", gotT)
	}
	if len(gotRelease) != 2 || gotRelease[0] != release[0] || gotRelease[1] != release[1] {
		t.Fatalf("hook saw release %v, want %v", gotRelease, release)
	}

	// Failed steps skip the hook.
	inner.fail = true
	called := false
	h = Hooked{Mechanism: inner, OnRelease: func(int, []float64) { called = true }}
	if _, err := h.Step(env); err == nil {
		t.Fatal("failing step succeeded")
	}
	if called {
		t.Fatal("hook invoked on a failed step")
	}

	// A nil hook is a no-op decoration.
	inner.fail = false
	if _, err := (Hooked{Mechanism: inner}).Step(env); err != nil {
		t.Fatal(err)
	}
}
