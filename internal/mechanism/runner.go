package mechanism

import (
	"fmt"

	"ldpids/internal/comm"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

// Runner drives a Mechanism over a Stream through an in-process Env,
// collecting released histograms, ground truth, communication statistics,
// and (optionally) a privacy audit. It is the simulation backbone used by
// tests, examples, and the benchmark harness.
type Runner struct {
	Stream     stream.Stream
	Oracle     fo.Oracle
	Src        *ldprand.Source
	Accountant *privacy.Accountant // nil disables auditing
}

// RunResult holds everything a run produced.
type RunResult struct {
	// Released holds r_t for each timestamp.
	Released [][]float64
	// True holds the ground-truth histogram c_t for each timestamp.
	True [][]float64
	// Comm summarizes communication cost.
	Comm comm.Stats
	// Violations holds any w-event privacy violations found by the
	// accountant (nil when auditing is disabled or the invariant held).
	Violations []privacy.Violation
}

// simEnv implements Env over an in-memory stream snapshot.
type simEnv struct {
	t       int
	n       int
	current []int
	oracle  fo.Oracle
	src     *ldprand.Source
	counter *comm.Counter
	acct    *privacy.Accountant
}

// T implements Env.
func (e *simEnv) T() int { return e.t }

// N implements Env.
func (e *simEnv) N() int { return e.n }

// collect drives one collection round: it perturbs each listed user's
// current value in order and hands the report to sink. The caller observes
// comm accounting through the returned (reports, bytes) totals.
func (e *simEnv) collect(users []int, eps float64, sink func(fo.Report) error) (count, bytes int, err error) {
	if eps <= 0 {
		return 0, 0, fmt.Errorf("mechanism: collect with non-positive eps %v", eps)
	}
	if e.acct != nil {
		e.acct.Observe(e.t, users, eps, e.n)
	}
	one := func(u int) error {
		r := e.oracle.Perturb(e.current[u], eps, e.src)
		count++
		bytes += r.Size()
		return sink(r)
	}
	if users == nil {
		for u := 0; u < e.n; u++ {
			if err := one(u); err != nil {
				return 0, 0, err
			}
		}
	} else {
		for _, u := range users {
			if u < 0 || u >= e.n {
				return 0, 0, fmt.Errorf("mechanism: collect from unknown user %d", u)
			}
			if err := one(u); err != nil {
				return 0, 0, err
			}
		}
	}
	return count, bytes, nil
}

// Collect implements Env by materializing the round's reports.
func (e *simEnv) Collect(users []int, eps float64) ([]fo.Report, error) {
	n := e.n
	if users != nil {
		n = len(users)
	}
	reports := make([]fo.Report, 0, n)
	count, bytes, err := e.collect(users, eps, func(r fo.Report) error {
		reports = append(reports, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.counter.Observe(count, bytes)
	return reports, nil
}

// CollectStream implements StreamEnv: each report is folded straight into
// agg, so a full-population round allocates no O(n) report buffer. The
// per-user perturbation order and randomness are identical to Collect.
func (e *simEnv) CollectStream(users []int, eps float64, agg fo.Aggregator) error {
	count, bytes, err := e.collect(users, eps, agg.Add)
	if err != nil {
		return err
	}
	e.counter.Observe(count, bytes)
	return nil
}

// Run executes m over at most T timestamps of the runner's stream and
// returns the run artifacts. It stops early if the stream ends.
func (r *Runner) Run(m Mechanism, T int) (*RunResult, error) {
	d := r.Stream.Domain()
	n := r.Stream.N()
	env := &simEnv{
		n:       n,
		oracle:  r.Oracle,
		src:     r.Src,
		counter: comm.NewCounter(n),
		acct:    r.Accountant,
	}
	res := &RunResult{}
	buf := make([]int, n)
	for t := 1; t <= T; t++ {
		vals, ok := r.Stream.Next(buf)
		if !ok {
			break
		}
		env.t = t
		env.current = vals
		env.counter.BeginTimestamp()
		release, err := m.Step(env)
		if err != nil {
			return nil, fmt.Errorf("mechanism %s at t=%d: %w", m.Name(), t, err)
		}
		if len(release) != d {
			return nil, fmt.Errorf("mechanism %s at t=%d: release length %d, want %d",
				m.Name(), t, len(release), d)
		}
		res.Released = append(res.Released, release)
		res.True = append(res.True, stream.Histogram(vals, d))
	}
	res.Comm = env.counter.Stats()
	if r.Accountant != nil {
		res.Violations = r.Accountant.Check(1e-9)
	}
	return res, nil
}
