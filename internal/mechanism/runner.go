package mechanism

import (
	"fmt"

	"ldpids/internal/collect"
	"ldpids/internal/comm"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

// Runner drives a Mechanism over a Stream through the in-process collect
// backend, collecting released histograms, ground truth, communication
// statistics, and (optionally) a privacy audit. It is the simulation
// backbone used by tests, examples, and the benchmark harness.
type Runner struct {
	Stream     stream.Stream
	Oracle     fo.Oracle
	Src        *ldprand.Source
	Accountant *privacy.Accountant // nil disables auditing
}

// RunResult holds everything a run produced.
type RunResult struct {
	// Released holds r_t for each timestamp.
	Released [][]float64
	// True holds the ground-truth histogram c_t for each timestamp.
	True [][]float64
	// Comm summarizes communication cost.
	Comm comm.Stats
	// Violations holds any w-event privacy violations found by the
	// accountant (nil when auditing is disabled or the invariant held).
	Violations []privacy.Violation
}

// newSimEnv wires the in-process simulation environment Runner.Run uses: a
// collect.Sim backend whose users perturb the snapshot behind *current with
// the shared source, adapted through a collect.Env. Callers update *current
// and call env.Advance once per timestamp. The per-user perturbation order
// and randomness match the historical simulation exactly.
func newSimEnv(n int, oracle fo.Oracle, src *ldprand.Source, current *[]int, acct *privacy.Accountant) *collect.Env {
	sim := &collect.Sim{
		Users: n,
		Report: func(u, _ int, eps float64) fo.Report {
			return oracle.Perturb((*current)[u], eps, src)
		},
	}
	env := collect.NewEnv(sim)
	if acct != nil {
		env.Observer = func(t int, users []int, eps float64) {
			acct.Observe(t, users, eps, n)
		}
	}
	return env
}

// Run executes m over at most T timestamps of the runner's stream and
// returns the run artifacts. It stops early if the stream ends.
func (r *Runner) Run(m Mechanism, T int) (*RunResult, error) {
	d := r.Stream.Domain()
	n := r.Stream.N()
	var current []int
	env := newSimEnv(n, r.Oracle, r.Src, &current, r.Accountant)
	res := &RunResult{}
	buf := make([]int, n)
	for t := 1; t <= T; t++ {
		vals, ok := r.Stream.Next(buf)
		if !ok {
			break
		}
		current = vals
		env.Advance(t)
		release, err := m.Step(env)
		if err != nil {
			return nil, fmt.Errorf("mechanism %s at t=%d: %w", m.Name(), t, err)
		}
		if len(release) != d {
			return nil, fmt.Errorf("mechanism %s at t=%d: release length %d, want %d",
				m.Name(), t, len(release), d)
		}
		res.Released = append(res.Released, release)
		res.True = append(res.True, stream.Histogram(vals, d))
	}
	res.Comm = env.Stats()
	if r.Accountant != nil {
		res.Violations = r.Accountant.Check(1e-9)
	}
	return res, nil
}
