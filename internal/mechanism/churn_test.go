package mechanism

import (
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

func ids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestChurnPoolBasics(t *testing.T) {
	p := NewChurnPool(ids(10), 3, ldprand.New(1))
	if p.Census() != 10 || p.Available() != 10 {
		t.Fatal("initial state")
	}
	p.Advance(1)
	got := p.Draw(4)
	if len(got) != 4 || p.Available() != 6 {
		t.Fatalf("draw %v avail %d", got, p.Available())
	}
	// Drawn users are cooling down until t=4.
	p.Advance(2)
	if p.Available() != 6 {
		t.Fatal("cooldown readmitted too early")
	}
	p.Advance(4)
	if p.Available() != 10 {
		t.Fatalf("cooldown not released at t=4: %d", p.Available())
	}
}

func TestChurnPoolShortDrawClamps(t *testing.T) {
	p := NewChurnPool(ids(3), 2, ldprand.New(2))
	p.Advance(1)
	if got := p.Draw(10); len(got) != 3 {
		t.Fatalf("short draw returned %d users", len(got))
	}
	if got := p.Draw(1); got != nil {
		t.Fatalf("empty pool returned %v", got)
	}
}

func TestChurnJoinLeave(t *testing.T) {
	p := NewChurnPool(ids(5), 3, ldprand.New(3))
	p.Advance(1)
	p.Join(99)
	if p.Census() != 6 || p.Available() != 6 {
		t.Fatal("fresh join not samplable")
	}
	p.Leave(99)
	if p.Census() != 5 || p.Available() != 5 {
		t.Fatal("leave not applied")
	}
	// Duplicate operations are no-ops.
	p.Leave(99)
	p.Join(0)
	if p.Census() != 5 || p.Available() != 5 {
		t.Fatal("duplicate ops changed state")
	}
}

func TestChurnRejoinCooldownPreventsDoubleReport(t *testing.T) {
	// A user who reports, leaves, and immediately rejoins must stay
	// unsamplable until w timestamps after the report.
	p := NewChurnPool([]int{7}, 5, ldprand.New(4))
	p.Advance(1)
	got := p.Draw(1)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("draw %v", got)
	}
	p.Leave(7)
	p.Advance(2)
	p.Join(7)
	for ts := 2; ts <= 5; ts++ {
		p.Advance(ts)
		if p.Available() != 0 {
			t.Fatalf("user 7 samplable at t=%d inside cooldown", ts)
		}
	}
	p.Advance(6) // 1 + w = 6: cooldown over
	if p.Available() != 1 {
		t.Fatal("user 7 not readmitted after cooldown")
	}
}

func TestChurnLPARunsUnderHeavyChurn(t *testing.T) {
	root := ldprand.New(5150)
	n, w, T := 3000, 8, 80
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	oracle := fo.NewGRR(2)
	m, err := NewChurnLPA(Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: root.Split()}, ids(n))
	if err != nil {
		t.Fatal(err)
	}
	acct := privacy.NewAccountant(1, w, n, root.Split())
	churnSrc := root.Split()

	var current []int
	env := newSimEnv(n, oracle, root.Split(), &current, acct)
	buf := make([]int, n)
	for ts := 1; ts <= T; ts++ {
		vals, _ := s.Next(buf)
		current = vals
		env.Advance(ts)
		// 2% of users leave and 2% rejoin every timestamp.
		for i := 0; i < n/50; i++ {
			m.Pool().Leave(churnSrc.Intn(n))
			m.Pool().Join(churnSrc.Intn(n))
		}
		release, err := m.Step(env)
		if err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
		if len(release) != 2 {
			t.Fatal("release shape")
		}
	}
	if v := acct.Check(1e-9); len(v) != 0 {
		t.Fatalf("churn violated w-event LDP: %v", v[0])
	}
	if got := acct.MaxReportsPerWindow(); got > 1 {
		t.Fatalf("a user reported %d times in one window under churn", got)
	}
}

func TestChurnLPATracksStream(t *testing.T) {
	// Without churn, ChurnLPA should behave like a reasonable mechanism.
	root := ldprand.New(616)
	n, w, T := 20000, 10, 100
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	oracle := fo.NewGRR(2)
	m, err := NewChurnLPA(Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: root.Split()}, ids(n))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := r.Run(m, T)
	if err != nil {
		t.Fatal(err)
	}
	if got := mre(res); got > 0.5 {
		t.Fatalf("ChurnLPA MRE %v implausibly large without churn", got)
	}
}

func TestChurnLPAValidation(t *testing.T) {
	oracle := fo.NewGRR(2)
	if _, err := NewChurnLPA(Params{Eps: 1, W: 10, N: 5, Oracle: oracle, Src: ldprand.New(1)}, ids(5)); err == nil {
		t.Fatal("tiny initial population accepted")
	}
}

// TestChurnAdvanceDeterministic is the regression test for the
// map-iteration-order bug the determinism analyzer surfaced: Advance used
// to readmit cooled-down users in map order, so two identically-seeded
// pools could rebuild avail in different orders and Draw different user
// sets. Identical schedules must now yield identical draw sequences.
func TestChurnAdvanceDeterministic(t *testing.T) {
	run := func() [][]int {
		p := NewChurnPool(ids(200), 2, ldprand.New(42))
		var draws [][]int
		for step := 1; step <= 8; step++ {
			p.Advance(step)
			draws = append(draws, p.Draw(60))
		}
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("step %d: draw sizes differ: %d vs %d", i+1, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("step %d: identically-seeded pools drew different users: %v vs %v", i+1, a[i], b[i])
			}
		}
	}
}
