package mechanism

// Behavioral tests that verify the exact resource-allocation sequences the
// paper derives, using a noiseless fake oracle and a scripted environment
// so strategy decisions are deterministic:
//
//   - LBD distributes publication budget as ε/4, ε/8, ε/16, ... (§5.4.2)
//   - LBA publishes with exactly ε/(2w) per timestamp when every timestamp
//     demands publication, and absorbs skipped budget otherwise
//   - LPD distributes publication users as N/4, N/8, ... (§6.3.2)
//   - all adaptive methods approximate forever on a constant stream

import (
	"math"
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// noiselessOracle reports values exactly and exposes a controllable
// variance, letting tests force publication (variance 0 => err 0 < dis) or
// approximation decisions deterministically.
type noiselessOracle struct {
	d int
	v float64 // reported variance per (eps, n)
}

func (o *noiselessOracle) Name() string { return "noiseless" }
func (o *noiselessOracle) Domain() int  { return o.d }
func (o *noiselessOracle) Perturb(v int, eps float64, src *ldprand.Source) fo.Report {
	return fo.Report{Value: v}
}
func (o *noiselessOracle) Estimate(reports []fo.Report, eps float64) ([]float64, error) {
	est := make([]float64, o.d)
	for _, r := range reports {
		est[r.Value]++
	}
	for k := range est {
		est[k] /= float64(len(reports))
	}
	return est, nil
}
func (o *noiselessOracle) Variance(eps float64, n int, fk float64) float64 { return o.v }
func (o *noiselessOracle) VarianceApprox(eps float64, n int) float64       { return o.v }

// noiselessAggregator folds exact value counts, mirroring Estimate.
type noiselessAggregator struct {
	counts []float64
	n      int
}

func (o *noiselessOracle) NewAggregator(eps float64) (fo.Aggregator, error) {
	return &noiselessAggregator{counts: make([]float64, o.d)}, nil
}

func (a *noiselessAggregator) Add(r fo.Report) error {
	a.counts[r.Value]++
	a.n++
	return nil
}

func (a *noiselessAggregator) Reports() int { return a.n }

func (a *noiselessAggregator) Estimate() ([]float64, error) {
	est := make([]float64, len(a.counts))
	for k, c := range a.counts {
		est[k] = c / float64(a.n)
	}
	return est, nil
}

// scriptedEnv serves values from a script (one histogram value per user per
// timestamp) and records every Collect call.
type scriptedEnv struct {
	t      int
	n      int
	values func(t, user int) int
	oracle fo.Oracle

	collects []collectCall
}

type collectCall struct {
	t     int
	users int // -1 means all
	eps   float64
}

func (e *scriptedEnv) T() int { return e.t }
func (e *scriptedEnv) N() int { return e.n }
func (e *scriptedEnv) Collect(users []int, eps float64) ([]fo.Report, error) {
	nUsers := -1
	ids := users
	if users == nil {
		ids = make([]int, e.n)
		for i := range ids {
			ids[i] = i
		}
	} else {
		nUsers = len(users)
	}
	e.collects = append(e.collects, collectCall{t: e.t, users: nUsers, eps: eps})
	src := ldprand.New(1)
	reports := make([]fo.Report, len(ids))
	for i, u := range ids {
		reports[i] = e.oracle.Perturb(e.values(e.t, u), eps, src)
	}
	return reports, nil
}

// alternating values flip the whole population's value every timestamp, so
// the dissimilarity is always large and adaptive methods always prefer
// publication.
func alternating(t, user int) int { return t % 2 }

// constant values never change, so after the first publication the
// dissimilarity is ~0 and adaptive methods always approximate.
func constant(t, user int) int { return 1 }

func runScripted(t *testing.T, m Mechanism, env *scriptedEnv, T int) {
	t.Helper()
	for ts := 1; ts <= T; ts++ {
		env.t = ts
		if _, err := m.Step(env); err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
	}
}

// m2Calls extracts the publication-phase collects (every second collect at
// timestamps where two collects happened).
func m2Calls(collects []collectCall) []collectCall {
	var out []collectCall
	byT := map[int][]collectCall{}
	for _, c := range collects {
		byT[c.t] = append(byT[c.t], c)
	}
	for t := 1; ; t++ {
		cs, ok := byT[t]
		if !ok {
			break
		}
		if len(cs) == 2 {
			out = append(out, cs[1])
		}
	}
	return out
}

func TestLBDBudgetSequence(t *testing.T) {
	// With dis always large, LBD publishes every timestamp; the paper's
	// budget sequence is eps/4, eps/8, eps/16, ...
	oracle := &noiselessOracle{d: 2, v: 0}
	eps, w := 1.0, 4
	env := &scriptedEnv{n: 100, values: alternating, oracle: oracle}
	m, err := NewLBD(Params{Eps: eps, W: w, N: 100, Oracle: oracle, Src: ldprand.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, m, env, 3)
	pubs := m2Calls(env.collects)
	if len(pubs) != 3 {
		t.Fatalf("expected 3 publications, got %d", len(pubs))
	}
	want := []float64{eps / 4, eps / 8, eps / 16}
	for i, p := range pubs {
		if math.Abs(p.eps-want[i]) > 1e-12 {
			t.Errorf("publication %d budget %v want %v", i+1, p.eps, want[i])
		}
	}
}

func TestLBAUniformSequenceUnderConstantChange(t *testing.T) {
	// With dis always large, LBA publishes each timestamp with exactly
	// the per-timestamp earmark eps/(2w) — nothing to absorb.
	oracle := &noiselessOracle{d: 2, v: 0}
	eps, w := 1.0, 5
	env := &scriptedEnv{n: 100, values: alternating, oracle: oracle}
	m, err := NewLBA(Params{Eps: eps, W: w, N: 100, Oracle: oracle, Src: ldprand.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, m, env, 5)
	pubs := m2Calls(env.collects)
	if len(pubs) != 5 {
		t.Fatalf("expected 5 publications, got %d", len(pubs))
	}
	unit := eps / (2 * float64(w))
	for i, p := range pubs {
		if math.Abs(p.eps-unit) > 1e-12 {
			t.Errorf("publication %d budget %v want %v", i+1, p.eps, unit)
		}
	}
}

func TestAdaptiveMethodsApproximateOnConstantStream(t *testing.T) {
	// After the initial publication (r_0 = 0 vs c = one-hot), a constant
	// stream yields dis ~ 0, so every adaptive method approximates.
	for _, name := range []string{"LBD", "LBA"} {
		oracle := &noiselessOracle{d: 2, v: 1e-9}
		env := &scriptedEnv{n: 100, values: constant, oracle: oracle}
		m, err := New(name, Params{Eps: 1, W: 4, N: 100, Oracle: oracle, Src: ldprand.New(1)})
		if err != nil {
			t.Fatal(err)
		}
		runScripted(t, m, env, 10)
		pubs := m2Calls(env.collects)
		if len(pubs) != 1 {
			t.Errorf("%s: expected exactly 1 publication on constant stream, got %d", name, len(pubs))
		}
	}
}

func TestLPDPopulationSequence(t *testing.T) {
	// With dis always large, LPD's publication groups follow N/4, N/8,
	// ... of the publication population (paper §6.3.2).
	oracle := &noiselessOracle{d: 2, v: 0}
	n, w := 800, 4
	env := &scriptedEnv{n: n, values: alternating, oracle: oracle}
	m, err := NewLPD(Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: ldprand.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, m, env, 3)
	pubs := m2Calls(env.collects)
	if len(pubs) != 3 {
		t.Fatalf("expected 3 publications, got %d", len(pubs))
	}
	want := []int{n / 4, n / 8, n / 16}
	for i, p := range pubs {
		if p.users != want[i] {
			t.Errorf("publication %d used %d users, want %d", i+1, p.users, want[i])
		}
	}
}

func TestLPAEarmarkSequence(t *testing.T) {
	// With dis always large, LPA publishes each timestamp with exactly
	// the per-timestamp user earmark ⌊N/(2w)⌋.
	oracle := &noiselessOracle{d: 2, v: 0}
	n, w := 800, 4
	env := &scriptedEnv{n: n, values: alternating, oracle: oracle}
	m, err := NewLPA(Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: ldprand.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, m, env, 2*w)
	pubs := m2Calls(env.collects)
	if len(pubs) != 2*w {
		t.Fatalf("expected %d publications, got %d", 2*w, len(pubs))
	}
	unit := n / (2 * w)
	for i, p := range pubs {
		if p.users != unit {
			t.Errorf("publication %d used %d users, want %d", i+1, p.users, unit)
		}
	}
}

func TestLBAAbsorptionAfterQuietPeriod(t *testing.T) {
	// Quiet for k timestamps then a burst: the burst publication must
	// absorb the skipped earmarks (budget (k+1)·ε/(2w)), then nullify.
	oracle := &noiselessOracle{d: 2, v: 1e-9}
	eps, w := 1.0, 6
	quiet := 3
	values := func(t, user int) int {
		if t <= quiet {
			return 1 // constant: approximate (after t=1's initial pub)
		}
		return t % 2 // burst: publish
	}
	env := &scriptedEnv{n: 100, values: values, oracle: oracle}
	m, err := NewLBA(Params{Eps: eps, W: w, N: 100, Oracle: oracle, Src: ldprand.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	runScripted(t, m, env, quiet+2)
	pubs := m2Calls(env.collects)
	// t=1 initial publication (r0=0), then the burst at t=quiet+1.
	if len(pubs) < 2 {
		t.Fatalf("expected >= 2 publications, got %d", len(pubs))
	}
	unit := eps / (2 * float64(w))
	burst := pubs[1]
	// t=1 published with 1 unit -> tN=0; absorbed t=2..quiet+1 relative
	// to l+tN: tA = (quiet+1) - 1 = quiet earmarks... the exact count:
	wantUnits := float64(quiet)
	if math.Abs(burst.eps-unit*wantUnits) > 1e-12 {
		t.Errorf("burst publication budget %v want %v (=%v units)",
			burst.eps, unit*wantUnits, wantUnits)
	}
}
