package mechanism

import (
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

func granRun(t *testing.T, m Mechanism, n, T int, eps float64, w int, seed uint64) (*RunResult, *privacy.Accountant) {
	t.Helper()
	root := ldprand.New(seed)
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	oracle := fo.NewGRR(2)
	acct := privacy.NewAccountant(eps, w, n, root.Split())
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, err := r.Run(m, T)
	if err != nil {
		t.Fatal(err)
	}
	return res, acct
}

func TestEventLevelViolatesWEvent(t *testing.T) {
	// Event-level LDP must blow past the w-event budget: that is the
	// point of the baseline.
	root := ldprand.New(11)
	n := 500
	oracle := fo.NewGRR(2)
	m, err := NewEventLevel(Params{Eps: 1, W: 5, N: n, Oracle: oracle, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	res, acct := granRun(t, m, n, 20, 1, 5, 12)
	if len(res.Violations) == 0 {
		t.Fatal("event-level baseline did not violate the w-event budget")
	}
	if spend := acct.MaxWindowSpend(); spend < 4.9 {
		t.Fatalf("window spend %v, want ~w*eps=5", spend)
	}
}

func TestEventLevelBestUtility(t *testing.T) {
	// At the same nominal eps, event-level releases are far more
	// accurate than w-event LBU — the privacy/utility trade.
	root := ldprand.New(13)
	n := 20000
	oracle := fo.NewGRR(2)
	ev, _ := NewEventLevel(Params{Eps: 1, W: 20, N: n, Oracle: oracle, Src: root.Split()})
	lbu, _ := NewLBU(Params{Eps: 1, W: 20, N: n, Oracle: oracle, Src: root.Split()})
	evRes, _ := granRun(t, ev, n, 40, 1, 20, 14)
	lbuRes, _ := granRun(t, lbu, n, 40, 1, 20, 15)
	if mre(evRes) >= mre(lbuRes) {
		t.Fatalf("event-level MRE %v not below LBU %v", mre(evRes), mre(lbuRes))
	}
}

func TestUserLevelFiniteHorizon(t *testing.T) {
	root := ldprand.New(17)
	n := 1000
	oracle := fo.NewGRR(2)
	m, err := NewUserLevelFinite(Params{Eps: 1, W: 5, N: n, Oracle: oracle, Src: root.Split()}, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	r := &Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	if _, err := r.Run(m, 10); err != nil {
		t.Fatalf("within horizon: %v", err)
	}
	// The 11th step must fail: budget exhausted.
	current := make([]int, n)
	env := newSimEnv(n, oracle, root.Split(), &current, nil)
	env.Advance(11)
	if _, err := m.Step(env); err == nil {
		t.Fatal("user-level mechanism ran past its horizon")
	}
}

func TestUserLevelSatisfiesWEvent(t *testing.T) {
	// eps/T per step trivially satisfies any w <= T window budget.
	root := ldprand.New(19)
	n := 500
	oracle := fo.NewGRR(2)
	m, _ := NewUserLevelFinite(Params{Eps: 1, W: 10, N: n, Oracle: oracle, Src: root.Split()}, 50)
	res, _ := granRun(t, m, n, 50, 1, 10, 20)
	if len(res.Violations) != 0 {
		t.Fatalf("user-level violated: %v", res.Violations[0])
	}
}

func TestGranularityValidation(t *testing.T) {
	oracle := fo.NewGRR(2)
	if _, err := NewUserLevelFinite(Params{Eps: 1, W: 5, N: 10, Oracle: oracle, Src: ldprand.New(1)}, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NewEventLevel(Params{}); err == nil {
		t.Fatal("empty params accepted")
	}
}
