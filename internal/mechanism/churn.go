package mechanism

import (
	"fmt"
	"math"
	"sort"

	"ldpids/internal/ldprand"
	"ldpids/internal/window"
)

// Churn support (paper §6.4 Remark 2): in mobile deployments users join
// and leave over time. The population-division framework stays private
// under churn as long as two rules hold:
//
//  1. a user reports at most once in any window of w timestamps, and
//  2. a user who leaves and rejoins within w timestamps must not become
//     samplable again until w timestamps have passed since their last
//     report (otherwise leave+rejoin would launder a second report into
//     one window).
//
// ChurnPool enforces both; ChurnLPA is an LPA variant that recomputes its
// group sizes from the live census each timestamp.

// ChurnPool is an available-user pool that supports joins and leaves while
// preserving the once-per-window sampling invariant.
type ChurnPool struct {
	w        int
	src      *ldprand.Source
	avail    []int
	inPool   map[int]bool
	outUntil map[int]int // user -> first timestamp they may be sampled again
	member   map[int]bool
	t        int
}

// NewChurnPool returns a pool over the initial user ids with window size w.
func NewChurnPool(initial []int, w int, src *ldprand.Source) *ChurnPool {
	p := &ChurnPool{
		w:        w,
		src:      src,
		inPool:   make(map[int]bool, len(initial)),
		outUntil: make(map[int]int),
		member:   make(map[int]bool, len(initial)),
	}
	for _, id := range initial {
		if p.member[id] {
			continue
		}
		p.member[id] = true
		p.inPool[id] = true
		p.avail = append(p.avail, id)
	}
	return p
}

// Advance moves the pool to timestamp t (must be called once per
// timestamp, increasing) and readmits users whose cooldown expired.
// Readmissions append in ascending id order: avail's order feeds the
// seeded sampling in Draw, so appending in map-iteration order would make
// identically-seeded runs draw different users.
func (p *ChurnPool) Advance(t int) {
	p.t = t
	var expired []int
	//ldpids:orderinvariant expired is sorted below before any order-sensitive use
	for id, until := range p.outUntil {
		if t >= until {
			expired = append(expired, id)
		}
	}
	sort.Ints(expired)
	for _, id := range expired {
		delete(p.outUntil, id)
		if p.member[id] && !p.inPool[id] {
			p.inPool[id] = true
			p.avail = append(p.avail, id)
		}
	}
}

// Join adds a user. A brand-new user is samplable immediately; a returning
// user stays in cooldown until w timestamps after their last report.
func (p *ChurnPool) Join(id int) {
	if p.member[id] {
		return
	}
	p.member[id] = true
	if until, cooling := p.outUntil[id]; cooling && p.t < until {
		return // readmitted by Advance when the cooldown expires
	}
	if !p.inPool[id] {
		p.inPool[id] = true
		p.avail = append(p.avail, id)
	}
}

// Leave removes a user: they are no longer samplable, and their report
// history keeps counting toward the cooldown if they rejoin.
func (p *ChurnPool) Leave(id int) {
	if !p.member[id] {
		return
	}
	delete(p.member, id)
	if p.inPool[id] {
		delete(p.inPool, id)
		for i, v := range p.avail {
			if v == id {
				p.avail[i] = p.avail[len(p.avail)-1]
				p.avail = p.avail[:len(p.avail)-1]
				break
			}
		}
	}
}

// Census returns the number of current members (samplable or cooling).
func (p *ChurnPool) Census() int { return len(p.member) }

// Available returns the number of samplable users.
func (p *ChurnPool) Available() int { return len(p.avail) }

// Draw samples up to k users without replacement; sampled users enter a
// w-timestamp cooldown. It returns fewer than k users only if the pool is
// short (the caller should treat the draw size as authoritative).
func (p *ChurnPool) Draw(k int) []int {
	if k > len(p.avail) {
		k = len(p.avail)
	}
	if k <= 0 {
		return nil
	}
	n := len(p.avail)
	for i := 0; i < k; i++ {
		j := p.src.Intn(n - i)
		p.avail[n-1-i], p.avail[j] = p.avail[j], p.avail[n-1-i]
	}
	out := make([]int, k)
	copy(out, p.avail[n-k:])
	p.avail = p.avail[:n-k]
	for _, id := range out {
		delete(p.inPool, id)
		p.outUntil[id] = p.t + p.w
	}
	return out
}

// ChurnLPA is a population-absorption mechanism over a churning
// population: group sizes are recomputed from the live census every
// timestamp, and the rejoin cooldown guarantees w-event LDP for every user
// regardless of join/leave patterns.
type ChurnLPA struct {
	p            Params
	pool         *ChurnPool
	pubLed       *window.Ledger
	last         []float64
	t            int
	lastPub      int
	lastPubUsers int
}

// NewChurnLPA constructs a churn-aware LPA over the initial user set.
// Params.N is only the initial census; the mechanism follows the pool.
func NewChurnLPA(p Params, initial []int) (*ChurnLPA, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(initial) < 2*p.W {
		return nil, fmt.Errorf("mechanism: ChurnLPA needs >= 2w initial users, got %d", len(initial))
	}
	return &ChurnLPA{
		p:      p,
		pool:   NewChurnPool(initial, p.W, p.Src.Split()),
		pubLed: window.NewLedger(p.W),
		last:   zeros(p.d()),
	}, nil
}

// Pool exposes the churn pool so the driver can apply joins/leaves between
// timestamps.
func (m *ChurnLPA) Pool() *ChurnPool { return m.pool }

// Name implements Mechanism.
func (m *ChurnLPA) Name() string { return "ChurnLPA" }

// Step implements Mechanism.
func (m *ChurnLPA) Step(env Env) ([]float64, error) {
	m.t++
	m.pool.Advance(m.t)

	census := m.pool.Census()
	unit := int(m.p.disFrac() * float64(census) / float64(m.p.W))
	if unit < 1 {
		unit = 1
	}

	// M1: dissimilarity from a per-timestamp census-scaled group.
	u1 := m.pool.Draw(unit)
	if len(u1) == 0 {
		// Population collapsed: approximate.
		m.pubLed.Append(0)
		return copyVec(m.last), nil
	}
	c1, err := estimate(env, m.p.Oracle, u1, m.p.Eps)
	if err != nil {
		return nil, err
	}
	dis := dissimilarity(c1, m.last, publicationError(m.p.Oracle, m.p.Eps, len(u1)))

	// M2: absorption with census-scaled earmarks.
	tN := 0
	if m.lastPubUsers > 0 {
		tN = m.lastPubUsers/unit - 1
		if tN > m.p.W {
			tN = m.p.W
		}
	}
	if m.lastPub > 0 && m.t-m.lastPub <= tN {
		m.pubLed.Append(0)
		return copyVec(m.last), nil
	}
	tA := m.t - (m.lastPub + tN)
	if tA > m.p.W {
		tA = m.p.W
	}
	nPP := unit * tA
	// Never request more users than are actually samplable.
	if avail := m.pool.Available(); nPP > avail {
		nPP = avail
	}
	errPub := math.Inf(1)
	if nPP > 0 {
		errPub = m.p.Oracle.VarianceApprox(m.p.Eps, nPP)
	}
	if dis > errPub {
		u2 := m.pool.Draw(nPP)
		if len(u2) > 0 {
			c2, err := estimate(env, m.p.Oracle, u2, m.p.Eps)
			if err != nil {
				return nil, err
			}
			m.pubLed.Append(float64(len(u2)))
			m.last = c2
			m.lastPub = m.t
			m.lastPubUsers = len(u2)
			return copyVec(c2), nil
		}
	}
	m.pubLed.Append(0)
	return copyVec(m.last), nil
}
