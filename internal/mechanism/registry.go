package mechanism

import "fmt"

// Names lists all implemented methods in the paper's presentation order:
// budget division first, then population division.
var Names = []string{"LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"}

// BudgetDivisionNames lists the budget-division methods.
var BudgetDivisionNames = []string{"LBU", "LBD", "LBA"}

// PopulationDivisionNames lists the population-division methods (the paper
// groups LSP with them: all users report once per window with full ε).
var PopulationDivisionNames = []string{"LSP", "LPU", "LPD", "LPA"}

// New constructs a mechanism by its paper name.
func New(name string, p Params) (Mechanism, error) {
	switch name {
	case "LBU":
		return NewLBU(p)
	case "LSP":
		return NewLSP(p)
	case "LBD":
		return NewLBD(p)
	case "LBA":
		return NewLBA(p)
	case "LPU":
		return NewLPU(p)
	case "LPD":
		return NewLPD(p)
	case "LPA":
		return NewLPA(p)
	case "EventLevel":
		// Granularity baseline, not a w-event mechanism: it deliberately
		// overspends any w-window (see granularity.go) and exists so the
		// harness can exercise the privacy accountant's violation path.
		return NewEventLevel(p)
	default:
		return nil, fmt.Errorf("mechanism: unknown method %q", name)
	}
}
