package mechanism

import "ldpids/internal/comm"

// newTestCounter exposes a comm counter with one open timestamp for
// low-level env tests.
func newTestCounter(n int) *comm.Counter {
	c := comm.NewCounter(n)
	c.BeginTimestamp()
	return c
}
