package mechanism

import "fmt"

// Privacy-granularity baselines contextualizing w-event LDP (the paper's
// Table 1): event-level LDP protects a single timestamp and so may spend
// the full ε at every timestamp — great utility, but the loss over any
// window of w grows to w·ε; user-level LDP on a finite horizon T splits ε
// across all T timestamps — strong protection, terrible utility. These are
// baselines for the compare-granularity experiment, not w-event mechanisms
// (EventLevel deliberately fails the w-event accountant).

// EventLevel applies a fresh ε-LDP frequency oracle at every timestamp.
// It guarantees event-level LDP only: over a window of w timestamps a
// user's cumulative loss is w·ε.
type EventLevel struct {
	p Params
}

// NewEventLevel constructs the event-level baseline.
func NewEventLevel(p Params) (*EventLevel, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &EventLevel{p: p}, nil
}

// Name implements Mechanism.
func (m *EventLevel) Name() string { return "EventLevel" }

// Step implements Mechanism.
func (m *EventLevel) Step(env Env) ([]float64, error) {
	return estimate(env, m.p.Oracle, nil, m.p.Eps)
}

// UserLevelFinite guarantees ε-LDP over an entire finite horizon of T
// timestamps by uniformly splitting the budget: every report uses ε/T.
// It cannot run past its horizon — the paper's core argument for why
// user-level privacy is unusable on infinite streams.
type UserLevelFinite struct {
	p       Params
	horizon int
	t       int
}

// NewUserLevelFinite constructs the user-level baseline for a horizon of T
// timestamps.
func NewUserLevelFinite(p Params, horizon int) (*UserLevelFinite, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if horizon < 1 {
		return nil, fmt.Errorf("mechanism: user-level horizon must be >= 1, got %d", horizon)
	}
	return &UserLevelFinite{p: p, horizon: horizon}, nil
}

// Name implements Mechanism.
func (m *UserLevelFinite) Name() string { return "UserLevel" }

// Step implements Mechanism.
func (m *UserLevelFinite) Step(env Env) ([]float64, error) {
	m.t++
	if m.t > m.horizon {
		return nil, fmt.Errorf("mechanism: user-level budget exhausted after horizon %d — the stream must restart (this is the failure mode w-event LDP removes)", m.horizon)
	}
	return estimate(env, m.p.Oracle, nil, m.p.Eps/float64(m.horizon))
}
