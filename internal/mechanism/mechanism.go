// Package mechanism implements the seven w-event LDP stream-release methods
// of the LDP-IDS paper:
//
//   - budget division: LBU (uniform), LSP (sampling), LBD (Algorithm 1,
//     budget distribution), LBA (Algorithm 2, budget absorption);
//   - population division: LPU (uniform), LPD (Algorithm 3, population
//     distribution), LPA (Algorithm 4, population absorption).
//
// A Mechanism is driven one timestamp at a time through an Env, which
// abstracts "ask this set of users to perturb their current value with
// budget ε via the frequency oracle and return the reports". The mechanism
// never sees raw user data — only FO reports — mirroring the paper's
// untrusted-aggregator trust model. Env is a thin view over the pluggable
// collection layer in package collect: collect.Env satisfies it for any
// collect.Collector backend (the in-process simulation, the in-memory
// channel backend, or the TCP transport in package transport).
package mechanism

import (
	"errors"
	"fmt"
	"math"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// Env is the world a mechanism interacts with at one timestamp: the user
// population reachable through an LDP frequency oracle.
type Env interface {
	// T returns the current (1-based) timestamp.
	T() int
	// N returns the total user population size.
	N() int
	// Collect asks the given users to report their current value
	// perturbed with budget eps via the configured frequency oracle.
	// A nil users slice means "all users". The reports come back in
	// unspecified order.
	Collect(users []int, eps float64) ([]fo.Report, error)
}

// StreamEnv is an optional Env extension for environments that can fold
// each report into a streaming fo.Aggregator as it arrives, keeping
// server-side memory at O(d) counters instead of the O(n·d) report slice
// Collect materializes. collect.Env implements it for every backend;
// mechanisms use it automatically through estimate.
type StreamEnv interface {
	Env
	// CollectStream behaves like Collect but adds every report to agg
	// instead of returning a slice. Aggregation is order-independent
	// (integer counts), so implementations may fold concurrently as long
	// as Add calls are serialized.
	CollectStream(users []int, eps float64, agg fo.Aggregator) error
}

// AggregatorEnv is an optional Env extension: environments whose backends
// ingest concurrently (HTTP handlers, per-user device goroutines) provide
// each round's aggregator themselves — typically a stripe-folding
// fo.StripedAggregator — so the server fold scales with cores instead of
// serializing through one Add loop. Striped and plain folds are
// bit-identical, so estimates never depend on which aggregator the
// environment hands out. collect.Env implements it for every backend.
type AggregatorEnv interface {
	Env
	// NewRoundAggregator returns the aggregator one collection round
	// should fold into for the given oracle and budget.
	NewRoundAggregator(o fo.Oracle, eps float64) (fo.Aggregator, error)
}

// Mechanism releases one estimated frequency histogram per timestamp while
// guaranteeing w-event ε-LDP to every user. Step must be called once per
// timestamp, in order.
type Mechanism interface {
	// Name returns the method's short paper name (LBU, LPD, ...).
	Name() string
	// Step processes the next timestamp through env and returns the
	// released histogram r_t (length d, frequencies).
	Step(env Env) ([]float64, error)
}

// Params configures a mechanism.
type Params struct {
	// Eps is the total privacy budget ε per sliding window.
	Eps float64
	// W is the sliding-window size w.
	W int
	// N is the population size (must match the Env's population).
	N int
	// Oracle is the frequency-oracle protocol shared by all users.
	Oracle fo.Oracle
	// Src provides the mechanism's own randomness (user sampling). It is
	// distinct from the users' perturbation randomness, which lives in
	// the Env.
	Src *ldprand.Source
	// UMin is the minimum publication-user count for LPD (paper §6.2.2,
	// threshold u_min). Zero means the default of 1.
	UMin int
	// DisFraction is the fraction of the per-window resource (budget or
	// population) devoted to the dissimilarity sub-mechanism M1; the
	// remainder funds publications. Nonzero values must lie in (0, 1);
	// zero selects the paper's even split of 1/2 (§5.3.3, §6.2.1).
	DisFraction float64
}

// disFrac returns the M1 resource fraction, defaulting to the paper's 1/2.
func (p *Params) disFrac() float64 {
	if p.DisFraction == 0 {
		return 0.5
	}
	return p.DisFraction
}

// validate checks parameter sanity shared by all constructors.
func (p *Params) validate() error {
	switch {
	case p.Eps <= 0:
		return fmt.Errorf("mechanism: eps must be positive, got %v", p.Eps)
	case p.W < 1:
		return fmt.Errorf("mechanism: window size must be >= 1, got %d", p.W)
	case p.N < 1:
		return fmt.Errorf("mechanism: population must be >= 1, got %d", p.N)
	case p.Oracle == nil:
		return errors.New("mechanism: oracle is required")
	case p.Src == nil:
		return errors.New("mechanism: randomness source is required")
	case p.DisFraction < 0 || p.DisFraction >= 1:
		return fmt.Errorf("mechanism: DisFraction must lie in (0, 1), or be 0 to select the default 1/2, got %v", p.DisFraction)
	}
	return nil
}

// d returns the domain size.
func (p *Params) d() int { return p.Oracle.Domain() }

// zeros returns the initial release r_0 = <0, ..., 0>.
func zeros(d int) []float64 { return make([]float64, d) }

// meanSqDiff returns (1/d) Σ_k (a[k]-b[k])^2.
func meanSqDiff(a, b []float64) float64 {
	sum := 0.0
	for k := range a {
		diff := a[k] - b[k]
		sum += diff * diff
	}
	return sum / float64(len(a))
}

// dissimilarity computes the paper's unbiased dissimilarity estimator
// (Eq. 4): the mean squared deviation between the fresh estimate c1 and the
// last release rPrev, debiased by the estimator's own variance.
func dissimilarity(c1, rPrev []float64, estVariance float64) float64 {
	return meanSqDiff(c1, rPrev) - estVariance
}

// estimate collects from users with budget eps via env and aggregates with
// the oracle. users == nil means all users. Environments implementing
// StreamEnv are folded report-by-report into a streaming aggregator; the
// two paths share count math exactly, so estimates are identical either
// way.
func estimate(env Env, o fo.Oracle, users []int, eps float64) ([]float64, error) {
	if se, ok := env.(StreamEnv); ok {
		var (
			agg fo.Aggregator
			err error
		)
		if ae, ok := env.(AggregatorEnv); ok {
			agg, err = ae.NewRoundAggregator(o, eps)
		} else {
			agg, err = o.NewAggregator(eps)
		}
		if err != nil {
			return nil, err
		}
		if err := se.CollectStream(users, eps, agg); err != nil {
			return nil, err
		}
		return agg.Estimate()
	}
	reports, err := env.Collect(users, eps)
	if err != nil {
		return nil, err
	}
	return o.Estimate(reports, eps)
}

// Hooked decorates a Mechanism with a round-close release hook: OnRelease
// is invoked after every successful Step with the timestamp and the
// released histogram, before Step returns. Long-running drivers hang live
// consumers off it — the gateway publishes each release into its versioned
// snapshot store (serving /v1/estimate and the /v1/stream SSE feed) and
// appends it to the durable release log — without the mechanism knowing
// anything about them. Failed steps skip the hook.
type Hooked struct {
	Mechanism
	// OnRelease observes each released histogram as its round closes. The
	// slice is the mechanism's release; consumers must copy it if they
	// retain it beyond the call.
	OnRelease func(t int, release []float64)
}

// Step implements Mechanism: it steps the wrapped mechanism and notifies
// the hook on success.
func (h Hooked) Step(env Env) ([]float64, error) {
	release, err := h.Mechanism.Step(env)
	if err == nil && h.OnRelease != nil {
		h.OnRelease(env.T(), release)
	}
	return release, err
}

// copyVec returns a copy of v; releases must not alias internal state.
func copyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// publicationError returns the oracle's frequency-independent estimation
// variance for n users at budget eps — the paper's potential publication
// error err (Eq. 6). n <= 0 yields +Inf, which forces approximation.
func publicationError(o fo.Oracle, eps float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return o.VarianceApprox(eps, n)
}
