package mechanism

import (
	"fmt"

	"ldpids/internal/ldprand"
	"ldpids/internal/window"
)

// ---------------------------------------------------------------------------
// Pool: available-user bookkeeping with recycling (Algorithms 3-4).
// ---------------------------------------------------------------------------

// Pool tracks the available user set U_A of the population-division
// methods: users leave the pool when sampled to report and return w-1
// timestamps later, so nobody participates twice in any sliding window.
type Pool struct {
	avail []int
	src   *ldprand.Source
}

// NewPool returns a pool containing users 0..n-1.
func NewPool(n int, src *ldprand.Source) *Pool {
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	return &Pool{avail: avail, src: src}
}

// Available returns the number of users currently in the pool.
func (p *Pool) Available() int { return len(p.avail) }

// Draw removes and returns k uniformly sampled users. It returns an error
// if the pool holds fewer than k users, which would indicate a broken
// window invariant in the calling mechanism.
func (p *Pool) Draw(k int) ([]int, error) {
	if k < 0 {
		return nil, fmt.Errorf("mechanism: negative draw %d", k)
	}
	if k > len(p.avail) {
		return nil, fmt.Errorf("mechanism: pool exhausted: need %d users, have %d", k, len(p.avail))
	}
	// Partial Fisher-Yates: move k random users to the tail, cut it off.
	n := len(p.avail)
	for i := 0; i < k; i++ {
		j := p.src.Intn(n - i)
		p.avail[n-1-i], p.avail[j] = p.avail[j], p.avail[n-1-i]
	}
	out := make([]int, k)
	copy(out, p.avail[n-k:])
	p.avail = p.avail[:n-k]
	return out, nil
}

// Return recycles users back into the pool.
func (p *Pool) Return(users []int) {
	p.avail = append(p.avail, users...)
}

// usedRing remembers which users were drawn at each of the last w
// timestamps so they can be recycled when their window expires.
type usedRing struct {
	w     int
	slots [][]int
}

func newUsedRing(w int) *usedRing {
	return &usedRing{w: w, slots: make([][]int, w)}
}

// record stores the users drawn at timestamp t (appending to any users
// already recorded for t).
func (r *usedRing) record(t int, users []int) {
	r.slots[t%r.w] = append(r.slots[t%r.w], users...)
}

// take removes and returns the users recorded at timestamp t.
func (r *usedRing) take(t int) []int {
	i := t % r.w
	u := r.slots[i]
	r.slots[i] = nil
	return u
}

// ---------------------------------------------------------------------------
// LPU: LDP Population Uniform (§6.1).
// ---------------------------------------------------------------------------

// LPU partitions the population into w disjoint groups; at each timestamp
// one group (round-robin) reports with the entire budget ε and the server
// releases a fresh estimate.
type LPU struct {
	p      Params
	groups [][]int
	t      int
}

// NewLPU constructs the uniform population-division baseline. It requires
// N >= w so every group is non-empty.
func NewLPU(p Params) (*LPU, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.N < p.W {
		return nil, fmt.Errorf("mechanism: LPU needs N >= w, got N=%d w=%d", p.N, p.W)
	}
	// Random assignment into w near-equal groups.
	perm := p.Src.Perm(p.N)
	groups := make([][]int, p.W)
	for i, u := range perm {
		g := i % p.W
		groups[g] = append(groups[g], u)
	}
	return &LPU{p: p, groups: groups}, nil
}

// Name implements Mechanism.
func (m *LPU) Name() string { return "LPU" }

// Step implements Mechanism.
func (m *LPU) Step(env Env) ([]float64, error) {
	g := m.t % m.p.W
	m.t++
	return estimate(env, m.p.Oracle, m.groups[g], m.p.Eps)
}

// ---------------------------------------------------------------------------
// LPD: LDP Population Distribution (Algorithm 3).
// ---------------------------------------------------------------------------

// LPD is the population-division analogue of LBD: ⌊N/(2w)⌋ dissimilarity
// users report per timestamp with the whole budget ε, and each publication
// claims half of the publication users still unclaimed in the active
// window. Used users are recycled once they fall out of the window.
type LPD struct {
	p      Params
	pool   *Pool
	used   *usedRing
	pubLed *window.Ledger // |U_{i,2}| per timestamp over the last w-1
	last   []float64
	t      int
	uMin   int
	m1Size int
}

// NewLPD constructs the population-distribution mechanism (Algorithm 3).
// It requires N >= 2w so the per-timestamp dissimilarity group is
// non-empty.
func NewLPD(p Params) (*LPD, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.N < 2*p.W {
		return nil, fmt.Errorf("mechanism: LPD needs N >= 2w, got N=%d w=%d", p.N, p.W)
	}
	uMin := p.UMin
	if uMin <= 0 {
		uMin = 1
	}
	lw := p.W - 1
	if lw < 1 {
		lw = 1
	}
	m1 := int(p.disFrac() * float64(p.N) / float64(p.W))
	if m1 < 1 {
		return nil, fmt.Errorf("mechanism: LPD dissimilarity group empty (N=%d w=%d)", p.N, p.W)
	}
	return &LPD{
		p:      p,
		pool:   NewPool(p.N, p.Src.Split()),
		used:   newUsedRing(p.W),
		pubLed: window.NewLedger(lw),
		last:   zeros(p.d()),
		uMin:   uMin,
		m1Size: m1,
	}, nil
}

// Name implements Mechanism.
func (m *LPD) Name() string { return "LPD" }

// Step implements Mechanism.
func (m *LPD) Step(env Env) ([]float64, error) {
	m.t++

	// Sub-mechanism M_{t,1}: dissimilarity users report with full ε.
	u1, err := m.pool.Draw(m.m1Size)
	if err != nil {
		return nil, err
	}
	m.used.record(m.t, u1)
	c1, err := estimate(env, m.p.Oracle, u1, m.p.Eps)
	if err != nil {
		return nil, err
	}
	dis := dissimilarity(c1, m.last, publicationError(m.p.Oracle, m.p.Eps, len(u1)))

	// Sub-mechanism M_{t,2}: remaining publication users in the active
	// window, halved for the potential publication.
	nRM := (1-m.p.disFrac())*float64(m.p.N) - m.pubLed.WindowSum()
	if nRM < 0 {
		nRM = 0
	}
	nPP := int(nRM / 2)
	errPub := publicationError(m.p.Oracle, m.p.Eps, nPP)

	var release []float64
	if dis > errPub && nPP >= m.uMin {
		// Publication strategy.
		u2, err := m.pool.Draw(nPP)
		if err != nil {
			return nil, err
		}
		m.used.record(m.t, u2)
		c2, err := estimate(env, m.p.Oracle, u2, m.p.Eps)
		if err != nil {
			return nil, err
		}
		m.pubLed.Append(float64(nPP))
		m.last = c2
		release = copyVec(c2)
	} else {
		// Approximation strategy.
		m.pubLed.Append(0)
		release = copyVec(m.last)
	}

	// Recycle the users of timestamp t-w+1; they fall outside the next
	// active window.
	if m.t >= m.p.W {
		m.pool.Return(m.used.take(m.t - m.p.W + 1))
	}
	return release, nil
}

// ---------------------------------------------------------------------------
// LPA: LDP Population Absorption (Algorithm 4).
// ---------------------------------------------------------------------------

// LPA is the population-division analogue of LBA: ⌊N/(2w)⌋ publication
// users are earmarked per timestamp; a publication absorbs the earmarks of
// preceding approximated timestamps and nullifies enough succeeding
// earmarks to compensate.
type LPA struct {
	p            Params
	pool         *Pool
	used         *usedRing
	last         []float64
	t            int
	lastPub      int // l
	lastPubUsers int // |U_{l,2}|
	m1Size       int // dissimilarity users per timestamp
	pubUnit      int // publication-user earmark per timestamp
}

// NewLPA constructs the population-absorption mechanism (Algorithm 4).
func NewLPA(p Params) (*LPA, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.N < 2*p.W {
		return nil, fmt.Errorf("mechanism: LPA needs N >= 2w, got N=%d w=%d", p.N, p.W)
	}
	m1 := int(p.disFrac() * float64(p.N) / float64(p.W))
	pub := int((1 - p.disFrac()) * float64(p.N) / float64(p.W))
	if m1 < 1 || pub < 1 {
		return nil, fmt.Errorf("mechanism: LPA group empty (N=%d w=%d frac=%v)", p.N, p.W, p.disFrac())
	}
	return &LPA{
		p:       p,
		pool:    NewPool(p.N, p.Src.Split()),
		used:    newUsedRing(p.W),
		last:    zeros(p.d()),
		m1Size:  m1,
		pubUnit: pub,
	}, nil
}

// Name implements Mechanism.
func (m *LPA) Name() string { return "LPA" }

// Step implements Mechanism.
func (m *LPA) Step(env Env) ([]float64, error) {
	m.t++

	// Sub-mechanism M_{t,1}: identical to LPD.
	u1, err := m.pool.Draw(m.m1Size)
	if err != nil {
		return nil, err
	}
	m.used.record(m.t, u1)
	c1, err := estimate(env, m.p.Oracle, u1, m.p.Eps)
	if err != nil {
		return nil, err
	}
	dis := dissimilarity(c1, m.last, publicationError(m.p.Oracle, m.p.Eps, len(u1)))

	release, err := m.step2(env, dis)
	if err != nil {
		return nil, err
	}
	if m.t >= m.p.W {
		m.pool.Return(m.used.take(m.t - m.p.W + 1))
	}
	return release, nil
}

// step2 is sub-mechanism M_{t,2}: nullification, absorption, and strategy
// determination.
func (m *LPA) step2(env Env, dis float64) ([]float64, error) {
	// t_N = |U_{l,2}|/⌊N/(2w)⌋ - 1 timestamps after l are nullified.
	tN := 0
	if m.lastPubUsers > 0 {
		tN = m.lastPubUsers/m.pubUnit - 1
	}
	if m.lastPub > 0 && m.t-m.lastPub <= tN {
		return copyVec(m.last), nil
	}

	// Absorption: earmarks since the nullified span, capped at w.
	tA := m.t - (m.lastPub + tN)
	if tA > m.p.W {
		tA = m.p.W
	}
	nPP := m.pubUnit * tA
	errPub := publicationError(m.p.Oracle, m.p.Eps, nPP)

	if dis > errPub {
		u2, err := m.pool.Draw(nPP)
		if err != nil {
			return nil, err
		}
		m.used.record(m.t, u2)
		c2, err := estimate(env, m.p.Oracle, u2, m.p.Eps)
		if err != nil {
			return nil, err
		}
		m.last = c2
		m.lastPub = m.t
		m.lastPubUsers = nPP
		return copyVec(c2), nil
	}
	return copyVec(m.last), nil
}
