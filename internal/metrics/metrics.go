// Package metrics implements the evaluation metrics of the paper's §7:
// mean relative error (MRE) between released and true statistic streams,
// supporting MAE/MSE variants, and ROC curves (with AUC) for the
// above-threshold event-monitoring task of Fig. 7.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSanityBound is the denominator floor used in relative error to
// avoid division blow-ups on near-zero true frequencies, following the
// standard MRE convention of the stream-DP literature (e.g. RescueDP).
const DefaultSanityBound = 0.001

// MRE returns the mean relative error between released and true streams of
// histograms: mean over all (t, k) of |r−c| / max(c, bound). bound <= 0
// selects DefaultSanityBound.
func MRE(released, truth [][]float64, bound float64) float64 {
	if bound <= 0 {
		bound = DefaultSanityBound
	}
	checkShapes(released, truth)
	sum, cnt := 0.0, 0
	for t := range truth {
		for k := range truth[t] {
			den := truth[t][k]
			if den < bound {
				den = bound
			}
			sum += math.Abs(released[t][k]-truth[t][k]) / den
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// MAE returns the mean absolute error over all (t, k).
func MAE(released, truth [][]float64) float64 {
	checkShapes(released, truth)
	sum, cnt := 0.0, 0
	for t := range truth {
		for k := range truth[t] {
			sum += math.Abs(released[t][k] - truth[t][k])
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// MSE returns the mean squared error over all (t, k).
func MSE(released, truth [][]float64) float64 {
	checkShapes(released, truth)
	sum, cnt := 0.0, 0
	for t := range truth {
		for k := range truth[t] {
			d := released[t][k] - truth[t][k]
			sum += d * d
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// PerTimestampMAE returns the mean absolute error at each timestamp,
// useful for error-over-time plots.
func PerTimestampMAE(released, truth [][]float64) []float64 {
	checkShapes(released, truth)
	out := make([]float64, len(truth))
	for t := range truth {
		sum := 0.0
		for k := range truth[t] {
			sum += math.Abs(released[t][k] - truth[t][k])
		}
		out[t] = sum / float64(len(truth[t]))
	}
	return out
}

func checkShapes(a, b [][]float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: stream lengths differ: %d vs %d", len(a), len(b)))
	}
	for t := range a {
		if len(a[t]) != len(b[t]) {
			panic(fmt.Sprintf("metrics: histogram sizes differ at t=%d: %d vs %d",
				t, len(a[t]), len(b[t])))
		}
	}
}

// ---------------------------------------------------------------------------
// ROC analysis for event monitoring (Fig. 7).
// ---------------------------------------------------------------------------

// ROCPoint is one operating point of a detector.
type ROCPoint struct {
	FPR float64 // false positive rate
	TPR float64 // true positive rate
}

// ROC computes the ROC curve for detecting ground-truth positives from
// scores: for every score threshold, the fraction of true positives and
// false positives whose score exceeds it. labels[i] is the ground truth for
// item i; scores[i] the detector's statistic (higher = more positive). The
// returned curve is sorted by ascending FPR and includes (0,0) and (1,1).
func ROC(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) {
		panic("metrics: scores and labels length mismatch")
	}
	type item struct {
		score float64
		pos   bool
	}
	items := make([]item, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		items[i] = item{scores[i], labels[i]}
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		// Process ties together so the curve is threshold-consistent.
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		p := ROCPoint{TPR: 1, FPR: 1}
		if pos > 0 {
			p.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			p.FPR = float64(fp) / float64(neg)
		}
		curve = append(curve, p)
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		curve = append(curve, ROCPoint{1, 1})
	}
	return curve
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// AboveThresholdLabels computes, per timestamp, whether the statistic of
// interest exceeds threshold — the ground truth of the event-monitoring
// task.
func AboveThresholdLabels(series []float64, threshold float64) []bool {
	out := make([]bool, len(series))
	for i, v := range series {
		out[i] = v > threshold
	}
	return out
}

// PaperThreshold computes the paper's event threshold
// δ = 0.75·(max−min)+min over the series (§7.4).
func PaperThreshold(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	minV, maxV := series[0], series[0]
	for _, v := range series {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	return 0.75*(maxV-minV) + minV
}

// MeanSeries reduces a histogram stream to the per-timestamp mean of the
// histogram — the monitored statistic on non-binary datasets (§7.4).
func MeanSeries(hists [][]float64) []float64 {
	out := make([]float64, len(hists))
	for t, h := range hists {
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		if len(h) > 0 {
			out[t] = sum / float64(len(h))
		}
	}
	return out
}

// ElementSeries extracts element k's frequency at each timestamp — the
// monitored statistic on binary datasets (the "1" frequency).
func ElementSeries(hists [][]float64, k int) []float64 {
	out := make([]float64, len(hists))
	for t, h := range hists {
		out[t] = h[k]
	}
	return out
}
