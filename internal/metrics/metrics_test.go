package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMREPerfectRelease(t *testing.T) {
	truth := [][]float64{{0.5, 0.5}, {0.3, 0.7}}
	if got := MRE(truth, truth, 0); got != 0 {
		t.Fatalf("MRE of perfect release %v", got)
	}
}

func TestMREKnownValue(t *testing.T) {
	truth := [][]float64{{0.5, 0.5}}
	rel := [][]float64{{0.6, 0.4}}
	// |0.1|/0.5 for both elements = 0.2.
	if got := MRE(rel, truth, 0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MRE %v want 0.2", got)
	}
}

func TestMRESanityBound(t *testing.T) {
	truth := [][]float64{{0.0, 1.0}}
	rel := [][]float64{{0.001, 0.999}}
	// Denominator floors at the bound, so errors stay finite.
	got := MRE(rel, truth, 0.001)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("MRE not finite: %v", got)
	}
	if math.Abs(got-(1.0+0.001)/2) > 1e-9 {
		t.Fatalf("MRE %v want %v", got, (1.0+0.001)/2)
	}
}

func TestMAEAndMSE(t *testing.T) {
	truth := [][]float64{{0, 0}}
	rel := [][]float64{{0.3, -0.1}}
	if got := MAE(rel, truth); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MAE %v", got)
	}
	if got := MSE(rel, truth); math.Abs(got-(0.09+0.01)/2) > 1e-12 {
		t.Fatalf("MSE %v", got)
	}
}

func TestPerTimestampMAE(t *testing.T) {
	truth := [][]float64{{0, 0}, {1, 1}}
	rel := [][]float64{{0.2, 0.2}, {1, 1}}
	got := PerTimestampMAE(rel, truth)
	if math.Abs(got[0]-0.2) > 1e-12 || got[1] != 0 {
		t.Fatalf("per-timestamp MAE %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	MAE([][]float64{{1}}, [][]float64{{1}, {2}})
}

func TestEmptyStreamsZero(t *testing.T) {
	if MRE(nil, nil, 0) != 0 || MAE(nil, nil) != 0 || MSE(nil, nil) != 0 {
		t.Fatal("empty streams should give zero error")
	}
}

func TestROCPerfectDetector(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := ROC(scores, labels)
	if auc := AUC(curve); math.Abs(auc-1.0) > 1e-12 {
		t.Fatalf("perfect detector AUC %v", auc)
	}
}

func TestROCRandomDetector(t *testing.T) {
	// Scores independent of labels give AUC ~0.5.
	var scores []float64
	var labels []bool
	x := uint64(88172645463325252)
	for i := 0; i < 2000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		scores = append(scores, float64(x%1000))
		labels = append(labels, i%2 == 0)
	}
	if auc := AUC(ROC(scores, labels)); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random detector AUC %v", auc)
	}
}

func TestROCInvertedDetector(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if auc := AUC(ROC(scores, labels)); math.Abs(auc-0.0) > 1e-12 {
		t.Fatalf("inverted detector AUC %v", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	curve := ROC([]float64{0.5, 0.6}, []bool{true, false})
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve start %v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve end %v", last)
	}
}

func TestROCTiesHandled(t *testing.T) {
	// All scores equal: curve jumps straight from (0,0) to (1,1), AUC 0.5.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if auc := AUC(ROC(scores, labels)); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied-score AUC %v", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		for i, r := range raw {
			scores[i] = float64(r % 16)
			labels[i] = r%3 == 0
		}
		curve := ROC(scores, labels)
		for i := 1; i < len(curve); i++ {
			if curve[i].FPR < curve[i-1].FPR-1e-12 || curve[i].TPR < curve[i-1].TPR-1e-12 {
				return false
			}
		}
		auc := AUC(curve)
		return auc >= -1e-9 && auc <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestROCLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	ROC([]float64{1}, []bool{true, false})
}

func TestPaperThreshold(t *testing.T) {
	series := []float64{0, 1, 0.5}
	if got := PaperThreshold(series); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("threshold %v want 0.75", got)
	}
	if PaperThreshold(nil) != 0 {
		t.Fatal("empty series threshold")
	}
}

func TestAboveThresholdLabels(t *testing.T) {
	got := AboveThresholdLabels([]float64{0.1, 0.9, 0.5}, 0.5)
	want := []bool{false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels %v want %v", got, want)
		}
	}
}

func TestSeriesExtractors(t *testing.T) {
	hists := [][]float64{{0.2, 0.8}, {0.6, 0.4}}
	e := ElementSeries(hists, 1)
	if e[0] != 0.8 || e[1] != 0.4 {
		t.Fatalf("element series %v", e)
	}
	m := MeanSeries(hists)
	if math.Abs(m[0]-0.5) > 1e-12 || math.Abs(m[1]-0.5) > 1e-12 {
		t.Fatalf("mean series %v", m)
	}
}
