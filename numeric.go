package ldpids

import (
	"ldpids/internal/filter"
	"ldpids/internal/numeric"
)

// ---------------------------------------------------------------------------
// Mean estimation over streams (numeric extension).
// ---------------------------------------------------------------------------

// MeanPerturber is a one-shot LDP mechanism for a real value in [-1, 1].
type MeanPerturber = numeric.Perturber

// DuchiPerturber returns Duchi et al.'s binary mean mechanism.
func DuchiPerturber() MeanPerturber { return numeric.Duchi{} }

// PiecewisePerturber returns the Piecewise Mechanism of Wang et al.
func PiecewisePerturber() MeanPerturber { return numeric.Piecewise{} }

// BestMeanPerturber picks the lower-variance mean mechanism for the budget.
func BestMeanPerturber(eps float64) MeanPerturber { return numeric.BestPerturber(eps) }

// NumericStream produces each user's true real value per timestamp.
type NumericStream = numeric.Stream

// NewWalkStream returns a numeric stream of clamped per-user random walks
// around a shared sinusoidal drift.
func NewWalkStream(n int, step, amp, rate float64, src *Source) NumericStream {
	return numeric.NewWalkStream(n, step, amp, rate, src)
}

// MeanMechanism releases one mean estimate per timestamp under w-event
// ε-LDP. It steps through a MeanEnv, so it runs over any Collector
// backend — in-process, channel, or TCP.
type MeanMechanism = numeric.MeanMechanism

// MeanEnv is the backend-agnostic world a mean mechanism steps through;
// CollectEnv satisfies it for every Collector.
type MeanEnv = numeric.Env

// MeanParams configures a streaming mean mechanism.
type MeanParams = numeric.MeanParams

// NewMeanLPU constructs the uniform population-division mean mechanism.
func NewMeanLPU(p MeanParams) (MeanMechanism, error) { return numeric.NewMeanLPU(p) }

// NewMeanLPA constructs the adaptive (absorption) population-division mean
// mechanism.
func NewMeanLPA(p MeanParams) (MeanMechanism, error) { return numeric.NewMeanLPA(p) }

// RunMean drives a mean mechanism over T timestamps of a numeric stream
// through the in-process backend. Pass the same MeanParams the mechanism
// was built with so perturbation randomness stays deterministic.
func RunMean(m MeanMechanism, s NumericStream, T int, p MeanParams) (released, truth []float64, err error) {
	return numeric.RunMean(m, s, T, p)
}

// NewMeanSimEnv returns an in-process CollectEnv for mean mechanisms: user
// u perturbs the value behind (*current)[u]. Update *current and call
// Advance once per timestamp.
func NewMeanSimEnv(p MeanParams, current *[]float64) (*CollectEnv, error) {
	return numeric.SimEnv(p, current)
}

// ---------------------------------------------------------------------------
// Server-side post-processing filters (free under DP).
// ---------------------------------------------------------------------------

// Kalman1D is a scalar Kalman filter with a random-walk state model.
type Kalman1D = filter.Kalman1D

// NewKalman1D returns a filter with the given process-noise variance.
func NewKalman1D(q float64) *Kalman1D { return filter.NewKalman1D(q) }

// KalmanStream filters every element of a released histogram stream given
// per-timestamp measurement variances.
func KalmanStream(released [][]float64, measVar []float64, q float64) [][]float64 {
	return filter.KalmanStream(released, measVar, q)
}

// EWMAStream smooths a released histogram stream with weight alpha.
func EWMAStream(released [][]float64, alpha float64) [][]float64 {
	return filter.EWMAStream(released, alpha)
}

// MovingAverageStream smooths a released stream with a trailing window.
func MovingAverageStream(released [][]float64, window int) [][]float64 {
	return filter.MovingAverage(released, window)
}
