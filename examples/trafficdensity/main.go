// Traffic density: the paper's motivating Taxi scenario. A fleet of
// vehicles continuously reports which of d city regions each is in; the
// aggregator maintains a live density map under w-event LDP without ever
// seeing a raw location. The example contrasts a budget-division and a
// population-division mechanism on the same trace.
package main

import (
	"fmt"
	"log"
	"strings"

	"ldpids"
)

const (
	nTaxis  = 5000
	regions = 5
	w       = 10
	eps     = 1.0
	T       = 144 // one simulated day at 10-minute resolution
)

func main() {
	for _, method := range []string{"LBA", "LPA"} {
		run(method)
	}
}

func run(method string) {
	root := ldpids.NewSource(7)
	s := ldpids.TaxiTrace(nTaxis, regions, root.Split())
	oracle := ldpids.NewGRR(regions)
	m, err := ldpids.NewMechanism(method, ldpids.Params{
		Eps: eps, W: w, N: nTaxis, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := runner.Run(m, T)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: private city density map ===\n", method)
	fmt.Println("time   downtown density (true vs released, bar = released)")
	for t := 0; t < T; t += 12 {
		tr, rl := res.True[t][0], res.Released[t][0]
		bar := int(rl * 100)
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%02d:%02d  %.3f vs %.3f  %s\n",
			(t*10)/60, (t*10)%60, tr, rl, strings.Repeat("#", bar))
	}
	fmt.Printf("MRE: %.4f   CFPU: %.4f   (reports sent: %d of %d possible)\n\n",
		ldpids.MRE(res.Released, res.True, 0), res.Comm.CFPU,
		res.Comm.Reports, int64(nTaxis)*int64(T))
}
