// Quickstart: collect a private frequency stream from 10,000 simulated
// users with the LPA mechanism (population absorption — the paper's best
// method) and compare the released estimates against the ground truth.
package main

import (
	"fmt"
	"log"

	"ldpids"
)

func main() {
	const (
		n   = 10000 // users
		w   = 20    // sliding-window size
		eps = 1.0   // privacy budget per window
		T   = 100   // timestamps to run
	)

	root := ldpids.NewSource(42)

	// A binary stream: at each timestamp, a slowly oscillating fraction
	// of users holds value 1 (e.g. "device is in the monitored state").
	s := ldpids.NewBinaryStream(n, ldpids.DefaultSin(), root.Split())

	// Frequency oracle shared by all users (GRR is optimal for d=2).
	oracle := ldpids.NewGRR(2)

	// The w-event LDP mechanism. Each user is guaranteed eps-LDP over
	// any window of w consecutive timestamps, forever.
	m, err := ldpids.NewMechanism("LPA", ldpids.Params{
		Eps: eps, W: w, N: n, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run with the privacy accountant auditing every report.
	acct := ldpids.NewAccountant(eps, w, n, root.Split())
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, err := runner.Run(m, T)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t     true f(1)   released    |error|")
	fmt.Println("---------------------------------------")
	for t := 0; t < T; t += 10 {
		tr, rl := res.True[t][1], res.Released[t][1]
		fmt.Printf("%-4d  %8.4f   %8.4f   %8.4f\n", t+1, tr, rl, abs(tr-rl))
	}
	fmt.Printf("\nMRE over %d timestamps: %.4f\n", T, ldpids.MRE(res.Released, res.True, 0))
	fmt.Printf("communication: %s\n", res.Comm)
	fmt.Printf("w-event LDP violations found by audit: %d\n", len(res.Violations))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
