// Quickstart: collect a private frequency stream from 10,000 simulated
// user devices with the LPA mechanism (population absorption — the paper's
// best method) and compare the released estimates against the ground
// truth.
//
// The devices run on the in-memory channel backend: every user is a
// goroutine answering report requests through its own inbox, a stand-in
// for a separate device process. The mechanism steps through a CollectEnv,
// so swapping the backend for the TCP transport (see cmd/ldpids-server)
// changes nothing in this loop — all backends produce bit-identical
// estimates from identical seeds.
package main

import (
	"fmt"
	"log"

	"ldpids"
)

func main() {
	const (
		n   = 10000 // users
		w   = 20    // sliding-window size
		eps = 1.0   // privacy budget per window
		T   = 100   // timestamps to run
	)

	root := ldpids.NewSource(42)

	// A binary stream: at each timestamp, a slowly oscillating fraction
	// of users holds value 1 (e.g. "device is in the monitored state").
	// Materialize T snapshots so the devices can answer from a script.
	s := ldpids.NewBinaryStream(n, ldpids.DefaultSin(), root.Split())
	snaps := ldpids.MaterializeStream(s, T)
	truth := ldpids.Histograms(snaps, 2)

	// Frequency oracle shared by all users (GRR is optimal for d=2), and
	// one private randomness source per device.
	oracle := ldpids.NewGRR(2)
	srcs := make([]*ldpids.Source, n)
	for u := range srcs {
		srcs[u] = root.Split()
	}

	// The backend: 10,000 device goroutines. Only perturbed reports ever
	// leave a device.
	backend := ldpids.NewChannelBackend(n, func(u, t int, eps float64) ldpids.Report {
		return oracle.Perturb(snaps[t-1][u], eps, srcs[u])
	}, nil)
	defer backend.Close()

	// The w-event LDP mechanism. Each user is guaranteed eps-LDP over
	// any window of w consecutive timestamps, forever.
	m, err := ldpids.NewMechanism("LPA", ldpids.Params{
		Eps: eps, W: w, N: n, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive the mechanism over the backend, with the privacy accountant
	// auditing every collection round.
	acct := ldpids.NewAccountant(eps, w, n, root.Split())
	env := ldpids.NewCollectEnv(backend)
	env.Observer = func(t int, users []int, eps float64) { acct.Observe(t, users, eps, n) }

	released := make([][]float64, 0, T)
	for t := 1; t <= T; t++ {
		env.Advance(t)
		r, err := m.Step(env)
		if err != nil {
			log.Fatalf("t=%d: %v", t, err)
		}
		released = append(released, r)
	}

	fmt.Println("t     true f(1)   released    |error|")
	fmt.Println("---------------------------------------")
	for t := 0; t < T; t += 10 {
		tr, rl := truth[t][1], released[t][1]
		fmt.Printf("%-4d  %8.4f   %8.4f   %8.4f\n", t+1, tr, rl, abs(tr-rl))
	}
	fmt.Printf("\nMRE over %d timestamps: %.4f\n", T, ldpids.MRE(released, truth, 0))
	fmt.Printf("communication: %s\n", env.Stats())
	fmt.Printf("w-event LDP violations found by audit: %d\n", len(acct.Check(1e-9)))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
