// Ad-click monitoring: a Taobao-like workload where an untrusted analytics
// server tracks which ad categories are trending across a large user base,
// and raises an alert the moment a category's (privately estimated) share
// crosses a threshold — the paper's event-monitoring task (§7.4).
package main

import (
	"fmt"
	"log"

	"ldpids"
)

const (
	nUsers     = 20000
	categories = 20 // reduced domain for a readable demo
	w          = 10
	eps        = 2.0
	T          = 200
)

func main() {
	root := ldpids.NewSource(2024)
	s := ldpids.TaobaoTrace(nUsers, categories, root.Split())
	oracle := ldpids.BestOracle(categories, eps)
	fmt.Printf("domain d=%d, eps=%g -> oracle %s\n\n", categories, eps, oracle.Name())

	m, err := ldpids.NewMechanism("LPD", ldpids.Params{
		Eps: eps, W: w, N: nUsers, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := runner.Run(m, T)
	if err != nil {
		log.Fatal(err)
	}

	// Build per-category alert thresholds from a historical window (the
	// first half), then replay the second half through a live detector.
	half := T / 2
	thresholds := make([]float64, categories)
	for k := 0; k < categories; k++ {
		var series []float64
		for t := 0; t < half; t++ {
			series = append(series, res.True[t][k])
		}
		thresholds[k] = ldpids.PaperThreshold(series)
	}
	det := ldpids.NewDetector(thresholds)
	fmt.Println("live alerts (category share crossed its historical threshold):")
	alerts := 0
	for t := half; t < T; t++ {
		for _, ev := range det.Observe(res.Released[t]) {
			fmt.Printf("  t=%-4d category %-3d released share %.4f > %.4f\n",
				t+1, ev.Element, ev.Value, thresholds[ev.Element])
			alerts++
		}
	}
	if alerts == 0 {
		fmt.Println("  (no crossings in this run)")
	}

	// Offline detection quality: ROC AUC against the ground truth.
	task := ldpids.PooledMonitorTask(res.Released, res.True)
	fmt.Printf("\nevent-monitoring AUC: %.3f  (events in truth: %d)\n", task.AUC(), task.Positives())
	fmt.Printf("MRE: %.4f   CFPU: %.4f\n", ldpids.MRE(res.Released, res.True, 0), res.Comm.CFPU)
}
