// Smart metering: households report whether their consumption is above a
// personal limit (a binary flag) every interval, indefinitely. The utility
// wants the fleet-wide exceedance rate in real time; households want
// w-event LDP. The example compares all seven mechanisms on one stream,
// reproducing the paper's headline comparison on a single workload.
package main

import (
	"fmt"
	"log"

	"ldpids"
)

const (
	nHomes = 20000
	w      = 20
	eps    = 1.0
	T      = 300
)

func main() {
	fmt.Printf("smart-meter fleet: %d homes, w=%d, eps=%g, %d intervals\n\n", nHomes, w, eps, T)
	fmt.Println("method   MRE      CFPU     audit")
	fmt.Println("---------------------------------")
	for _, method := range ldpids.MechanismNames {
		mre, cfpu, violations := run(method)
		status := "ok"
		if violations > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", violations)
		}
		fmt.Printf("%-6s %7.4f  %7.4f   %s\n", method, mre, cfpu, status)
	}
	fmt.Println("\nBudget division (LBU/LBD/LBA) pays LDP noise at eps/w per report;")
	fmt.Println("population division (LPU/LPD/LPA) gives each report the full eps and")
	fmt.Println("asks each home to report at most once per window - lower error AND")
	fmt.Println("~1/w the communication.")
}

func run(method string) (mre, cfpu float64, violations int) {
	root := ldpids.NewSource(1234)
	// Exceedance probability drifts slowly (weather) via the LNS walk.
	s := ldpids.NewBinaryStream(nHomes, ldpids.NewLNS(0.10, 0.003, root.Split()), root.Split())
	oracle := ldpids.NewGRR(2)
	m, err := ldpids.NewMechanism(method, ldpids.Params{
		Eps: eps, W: w, N: nHomes, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	acct := ldpids.NewAccountant(eps, w, nHomes, root.Split())
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, err := runner.Run(m, T)
	if err != nil {
		log.Fatal(err)
	}
	return ldpids.MRE(res.Released, res.True, 0), res.Comm.CFPU, len(res.Violations)
}
