// Mean estimation over an infinite stream: fitness trackers report a
// normalized activity score in [-1, 1] every interval; the aggregator
// tracks the population mean under w-event LDP using the population-
// division framework, then sharpens the released series with a Kalman
// filter (post-processing is free under DP).
//
// Mean mechanisms step through the same pluggable collection layer as the
// frequency mechanisms: here they run on the in-process backend via
// RunMean, but the identical Step loop drives them over the in-memory
// channel backend or the TCP transport (ldpids-server -numeric).
package main

import (
	"fmt"
	"log"
	"math"

	"ldpids"
)

const (
	nUsers = 30000
	w      = 15
	eps    = 1.0
	T      = 200
)

func main() {
	root := ldpids.NewSource(77)

	// Population mean oscillates (daily activity rhythm); individuals
	// random-walk around it.
	s := ldpids.NewWalkStream(nUsers, 0.002, 0.35, 0.06, root.Split())

	pert := ldpids.BestMeanPerturber(eps)
	fmt.Printf("mean perturber for eps=%g: %s (worst-case variance %.3f)\n\n",
		eps, pert.Name(), pert.WorstVariance(eps))

	// Uniform population division: every timestamp is a fresh estimate
	// from N/w reporters, so its measurement variance is known exactly —
	// ideal for Kalman post-processing.
	lpuParams := ldpids.MeanParams{
		Eps: eps, W: w, N: nUsers, Perturber: pert, Src: root.Split(),
	}
	mLPU, err := ldpids.NewMeanLPU(lpuParams)
	if err != nil {
		log.Fatal(err)
	}
	released, truth, err := ldpids.RunMean(mLPU, s, T, lpuParams)
	if err != nil {
		log.Fatal(err)
	}

	measVar := make([]float64, len(released))
	mv := pert.WorstVariance(eps) / float64(nUsers/w)
	for i := range measVar {
		measVar[i] = mv
	}
	wrapped := make([][]float64, len(released))
	for i, v := range released {
		wrapped[i] = []float64{v}
	}
	// Process noise matched to the drift speed: the population mean moves
	// about amp*rate ≈ 0.02 per step, so q ≈ (0.02)^2.
	smoothed := ldpids.KalmanStream(wrapped, measVar, 4e-4)

	// The adaptive mechanism, for comparison (same stream realization).
	s2 := ldpids.NewWalkStream(nUsers, 0.002, 0.35, 0.06, ldpids.NewSource(77).Split())
	lpaParams := ldpids.MeanParams{
		Eps: eps, W: w, N: nUsers, Perturber: pert, Src: root.Split(),
	}
	mLPA, err := ldpids.NewMeanLPA(lpaParams)
	if err != nil {
		log.Fatal(err)
	}
	lpaReleased, lpaTruth, err := ldpids.RunMean(mLPA, s2, T, lpaParams)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t     true mean   LPU raw    LPU+kalman   LPA")
	fmt.Println("------------------------------------------------")
	var rawMAE, kalMAE, lpaMAE float64
	for t := range released {
		if t%20 == 0 {
			fmt.Printf("%-4d  %8.4f   %8.4f   %8.4f   %8.4f\n",
				t+1, truth[t], released[t], smoothed[t][0], lpaReleased[t])
		}
		rawMAE += math.Abs(released[t] - truth[t])
		kalMAE += math.Abs(smoothed[t][0] - truth[t])
		lpaMAE += math.Abs(lpaReleased[t] - lpaTruth[t])
	}
	n := float64(len(released))
	fmt.Printf("\nMAE  LPU raw: %.4f   LPU+kalman: %.4f   LPA: %.4f\n",
		rawMAE/n, kalMAE/n, lpaMAE/n)
}
